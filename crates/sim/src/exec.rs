//! A work-distributing parallel experiment executor.
//!
//! Every figure and table regenerates by sweeping a grid of
//! (algorithm × pattern × offered load) cells. This module fans that
//! grid out across [`std::thread::scope`] workers with three guarantees:
//!
//! * **Determinism.** Each cell's simulation seed is derived from the
//!   series' base seed and the cell's identity (algorithm, pattern,
//!   load), never from scheduling order. Results are bit-identical to a
//!   single-threaded run and invariant under thread count.
//! * **Saturation-aware skipping.** Loads within a series ascend; once
//!   a load proves unsustainable, every higher load in that series is
//!   monotonically unsustainable too, so the executor stops claiming
//!   them and reports them as skipped. Speculative cells computed past
//!   the cutoff before it was known are also reported skipped, so the
//!   output never depends on how far ahead the workers raced.
//! * **Cell caching.** Completed cells can be recorded in a
//!   [`CellCache`] (in memory or backed by a file), so re-running a
//!   figure with an extended load grid only simulates the new points.
//!
//! The executor is engine-agnostic: a [`SeriesJob`] bundles the load
//! grid with a runner closure `(load, seed) -> SweepPoint`, so the
//! plain wormhole engine, the virtual-channel engine, and tests all
//! schedule through the same machinery.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::config::SimConfig;
use crate::engine::{SimReport, Simulation};
use crate::hist::LatencyHistogram;
use crate::lut::{RouteTable, RouteTableMode, DEFAULT_ROUTE_TABLE_BUDGET};
use crate::obs::NoopObserver;
use crate::oplog::{Level, Logger};
use crate::patterns::TrafficPattern;
use crate::sweep::{SweepPoint, SweepSeries};
use turnroute_core::RoutingAlgorithm;
use turnroute_rng::split_mix_64;
use turnroute_topology::Topology;

/// Derives the simulation seed for one sweep cell.
///
/// The seed depends only on the cell's identity — base seed, algorithm
/// name, pattern name, and offered load — so any schedule (serial,
/// parallel, cached) simulates the identical experiment.
pub fn derive_cell_seed(base: u64, algorithm: &str, pattern: &str, load: f64) -> u64 {
    let mut state = base;
    let mut feed = |bytes: &[u8]| {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state ^= u64::from_le_bytes(word);
            split_mix_64(&mut state);
        }
        // Length-delimit so ("ab", "c") and ("a", "bc") differ.
        state ^= bytes.len() as u64;
        split_mix_64(&mut state);
    };
    feed(algorithm.as_bytes());
    feed(pattern.as_bytes());
    feed(&load.to_bits().to_le_bytes());
    split_mix_64(&mut state)
}

/// What one sweep cell produces: the summary [`SweepPoint`] plus the
/// full latency histogram, kept so the executor can merge per-cell
/// distributions into cheap cross-run p50/p95/p99 telemetry.
///
/// Runners that only have a point (tests, cache replay) convert via
/// `From<SweepPoint>`, attaching an empty histogram.
#[derive(Debug, Clone)]
pub struct CellOutput {
    /// The cell's summary operating point.
    pub point: SweepPoint,
    /// The full message-latency distribution behind the point, in
    /// cycles. Empty for cache hits (the cache stores summaries only).
    pub latencies: LatencyHistogram,
}

impl CellOutput {
    /// The output of a finished engine run: summary point plus the
    /// measured latency histogram.
    pub fn from_report(report: &SimReport) -> Self {
        CellOutput {
            point: SweepPoint::from_report(report),
            latencies: report.metrics.latencies.clone(),
        }
    }
}

impl From<SweepPoint> for CellOutput {
    fn from(point: SweepPoint) -> Self {
        CellOutput {
            point,
            latencies: LatencyHistogram::default(),
        }
    }
}

/// One series of an experiment: a single (algorithm, pattern) pairing
/// swept over ascending offered loads by a runner closure.
pub struct SeriesJob<'a> {
    /// The routing algorithm's display name (also seeds cell identity).
    pub algorithm: String,
    /// The traffic pattern's display name (also seeds cell identity).
    pub pattern: String,
    /// Everything that identifies a cell's result besides the load:
    /// topology, configuration windows, base seed. Used as the cache
    /// key prefix; must not contain tabs or newlines.
    pub cache_key: String,
    /// The seed cell seeds are derived from.
    pub base_seed: u64,
    /// Offered loads, strictly ascending (required by the monotone
    /// saturation skip).
    pub loads: Vec<f64>,
    /// Channels failed at cycle 0 by this series' fault plan (0 for a
    /// healthy network); copied verbatim onto the output series.
    pub faults: u64,
    /// (src, dst) pairs `turnroute_fault::verify` found unroutable
    /// under this series' fault set; copied verbatim onto the output
    /// series.
    pub disconnected: u64,
    /// Simulates one cell: `(offered_load, derived_seed) -> output`.
    pub runner: Box<dyn Fn(f64, u64) -> CellOutput + Sync + 'a>,
}

impl<'a> SeriesJob<'a> {
    /// A series job with a custom runner (used by the virtual-channel
    /// engine and by tests). The runner may return anything convertible
    /// to a [`CellOutput`] — a bare [`SweepPoint`] works and attaches
    /// an empty latency histogram.
    ///
    /// # Panics
    ///
    /// Panics if `loads` is not strictly ascending or `cache_key`
    /// contains a tab or newline.
    pub fn new<R: Into<CellOutput>>(
        algorithm: impl Into<String>,
        pattern: impl Into<String>,
        cache_key: impl Into<String>,
        base_seed: u64,
        loads: &[f64],
        runner: impl Fn(f64, u64) -> R + Sync + 'a,
    ) -> Self {
        let cache_key = cache_key.into();
        assert!(
            loads.windows(2).all(|w| w[0] < w[1]),
            "sweep loads must be strictly ascending"
        );
        assert!(
            !cache_key.contains(['\t', '\n']),
            "cache key must not contain tabs or newlines"
        );
        SeriesJob {
            algorithm: algorithm.into(),
            pattern: pattern.into(),
            cache_key,
            base_seed,
            loads: loads.to_vec(),
            faults: 0,
            disconnected: 0,
            runner: Box::new(move |load, seed| runner(load, seed).into()),
        }
    }

    /// Labels this series with its fault-sweep coordinates: how many
    /// channels its plan fails at cycle 0 and how many (src, dst) pairs
    /// the verifier found unroutable. Both default to 0 (healthy).
    pub fn with_fault_info(mut self, faults: u64, disconnected: u64) -> Self {
        self.faults = faults;
        self.disconnected = disconnected;
        self
    }

    /// A series job running the plain wormhole engine.
    ///
    /// `base.injection_rate` and `base.seed` are overridden per cell;
    /// everything else (windows, lengths, selection policies) is kept.
    pub fn simulation(
        topo: &'a dyn Topology,
        algorithm: &'a dyn RoutingAlgorithm,
        pattern: &'a dyn TrafficPattern,
        base: &SimConfig,
        loads: &[f64],
    ) -> Self {
        let config = base.clone();
        let cache_key = sim_cache_key(topo.label(), &algorithm.name(), &pattern.name(), base);
        // One route table per series, built lazily by whichever worker
        // reaches the first uncached cell (a fully cached series never
        // pays for it) and shared across all the series' cells.
        let table: OnceLock<Option<Arc<RouteTable>>> = OnceLock::new();
        SeriesJob::new(
            algorithm.name(),
            pattern.name(),
            cache_key,
            base.seed,
            loads,
            move |load, seed| {
                let table = table
                    .get_or_init(|| RouteTable::for_config_with_faults(topo, algorithm, &config).0)
                    .clone();
                let cfg = config.clone().injection_rate(load).seed(seed);
                let report = Simulation::with_observer_and_table(
                    topo,
                    algorithm,
                    pattern,
                    cfg,
                    NoopObserver,
                    table,
                )
                .run();
                CellOutput::from_report(&report)
            },
        )
    }
}

/// Builds the cache key prefix for an engine run: topology, names, and
/// a fingerprint of every config field except the per-cell overrides.
pub fn sim_cache_key(
    topo_label: String,
    algorithm: &str,
    pattern: &str,
    base: &SimConfig,
) -> String {
    // The Debug rendering covers every field; zero the per-cell ones so
    // the fingerprint identifies the shared configuration only. The
    // route-table policy is canonicalized away too: table-driven and
    // direct routing produce bit-identical points, so cells cached
    // under one mode are valid under every other. Likewise the shard
    // count: reports are bit-identical at every value.
    let canonical = format!(
        "{:?}",
        base.clone()
            .injection_rate(0.0)
            .seed(0)
            .route_table(RouteTableMode::Auto)
            .route_table_budget(DEFAULT_ROUTE_TABLE_BUDGET)
            .shards(1)
    );
    let mut fp = 0x5EED_CE11u64;
    for chunk in canonical.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        fp ^= u64::from_le_bytes(word);
        split_mix_64(&mut fp);
    }
    format!(
        "{topo_label}|{algorithm}|{pattern}|s{:016x}|c{fp:016x}",
        base.seed
    )
}

/// A store of completed sweep cells, optionally backed by a file.
///
/// Keys identify a cell completely (series cache key + load), so a hit
/// is always safe to reuse. Skipped placeholders are never stored.
#[derive(Debug, Default)]
pub struct CellCache {
    map: HashMap<String, SweepPoint>,
    path: Option<PathBuf>,
}

impl CellCache {
    /// An empty cache that lives only for this process.
    pub fn in_memory() -> Self {
        CellCache::default()
    }

    /// A cache backed by `path`: loads existing entries if the file
    /// exists, and [`CellCache::flush`] writes back to it.
    pub fn at_path(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut cache = CellCache {
            map: HashMap::new(),
            path: Some(path.clone()),
        };
        match std::fs::File::open(&path) {
            Ok(file) => {
                for line in BufReader::new(file).lines() {
                    let line = line?;
                    if let Some((key, point)) = parse_cache_line(&line) {
                        cache.map.insert(key, point);
                    }
                }
                Ok(cache)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(cache),
            Err(e) => Err(e),
        }
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no cells are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Writes every entry to the backing file (no-op for in-memory
    /// caches). Entries are sorted by key so the file is reproducible.
    pub fn flush(&self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut entries: Vec<(&String, &SweepPoint)> = self.map.iter().collect();
        entries.sort_by_key(|(k, _)| k.as_str());
        let mut out = Vec::new();
        for (key, point) in entries {
            writeln!(out, "{}", render_cache_line(key, point))?;
        }
        std::fs::write(path, out)
    }

    fn get(&self, key: &str) -> Option<SweepPoint> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: String, point: SweepPoint) {
        debug_assert!(!point.skipped, "skipped placeholders are not results");
        self.map.insert(key, point);
    }
}

fn cell_key(cache_key: &str, load: f64) -> String {
    format!("{cache_key}|l{:016x}", load.to_bits())
}

/// Serializes a cell as one tab-separated line. Floats are stored as
/// their IEEE-754 bits so round trips are exact (cache reuse must not
/// perturb CSV bytes).
fn render_cache_line(key: &str, p: &SweepPoint) -> String {
    let opt = |v: Option<f64>| v.map_or("-".to_owned(), |x| format!("{:016x}", x.to_bits()));
    format!(
        "{key}\t{:016x}\t{:016x}\t{}\t{}\t{}\t{}\t{}\t{}",
        p.offered_load.to_bits(),
        p.throughput.to_bits(),
        opt(p.avg_latency_usec),
        opt(p.p95_latency_usec),
        opt(p.avg_hops),
        p.delivered,
        p.stranded,
        p.sustainable,
    )
}

fn parse_cache_line(line: &str) -> Option<(String, SweepPoint)> {
    let mut fields = line.split('\t');
    let key = fields.next()?.to_owned();
    let f64_field = |s: &str| u64::from_str_radix(s, 16).ok().map(f64::from_bits);
    let opt_field = |s: &str| -> Option<Option<f64>> {
        if s == "-" {
            Some(None)
        } else {
            f64_field(s).map(Some)
        }
    };
    let offered_load = f64_field(fields.next()?)?;
    let throughput = f64_field(fields.next()?)?;
    let avg_latency_usec = opt_field(fields.next()?)?;
    let p95_latency_usec = opt_field(fields.next()?)?;
    let avg_hops = opt_field(fields.next()?)?;
    // Pre-fault-sweep cache files lack the delivered/stranded columns;
    // their lines fail to parse here and the cells re-simulate.
    let delivered = fields.next()?.parse::<u64>().ok()?;
    let stranded = fields.next()?.parse::<u64>().ok()?;
    let sustainable = match fields.next()? {
        "true" => true,
        "false" => false,
        _ => return None,
    };
    if fields.next().is_some() {
        return None;
    }
    Some((
        key,
        SweepPoint {
            offered_load,
            throughput,
            avg_latency_usec,
            p95_latency_usec,
            avg_hops,
            delivered,
            stranded,
            sustainable,
            skipped: false,
        },
    ))
}

/// Counters describing what one [`Executor::run`] actually did.
///
/// `cache_hits`, `skipped`, and the `emitted_*` counters depend only on
/// the jobs and the cache contents, so they are safe to put in
/// deterministic output. `simulated` additionally counts speculative
/// cells workers computed past a cutoff before it was known, which can
/// vary with thread count — report it to humans (stderr), never into
/// byte-compared files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Cells simulated by a runner this run, speculation included.
    /// Thread-count-dependent; see the type docs.
    pub simulated: usize,
    /// Cells satisfied from the cache.
    pub cache_hits: usize,
    /// Cells reported as skipped by the saturation rule.
    pub skipped: usize,
    /// Emitted (non-skipped) points that came from the cache.
    /// Deterministic.
    pub emitted_from_cache: usize,
    /// Emitted (non-skipped) points simulated this run. Deterministic.
    pub emitted_simulated: usize,
}

/// A live progress and cancellation surface for one [`Executor::run`].
///
/// Attach with [`Executor::with_progress`] and share the [`Arc`] with
/// whoever needs to watch the run (the job server polls it for per-cell
/// progress and flips [`ExecProgress::cancel`] to abandon a job). All
/// counters are monotonic within one run; `run` resets them at entry.
///
/// Cancellation is cooperative and cell-granular: workers stop claiming
/// new cells, finish the one they are on, and the assembled series
/// report every uncomputed cell as a skipped placeholder.
#[derive(Debug, Default)]
pub struct ExecProgress {
    total: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicBool,
}

impl ExecProgress {
    /// A fresh surface, ready to attach to an executor.
    pub fn new() -> Arc<Self> {
        Arc::new(ExecProgress::default())
    }

    /// Total cells the current run will account for (0 before a run
    /// starts).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }

    /// Cells accounted for so far: simulated, served from the cache, or
    /// written off by the saturation skip / cancellation.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Acquire)
    }

    /// Asks the running executor to stop claiming new cells.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// `true` once [`ExecProgress::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Wall-time accounting for one emitted sweep cell.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// The series' algorithm name.
    pub algorithm: String,
    /// The series' pattern name.
    pub pattern: String,
    /// The cell's offered load.
    pub offered_load: f64,
    /// Wall-clock seconds the runner spent on this cell (0 for cache
    /// hits).
    pub wall_secs: f64,
    /// `true` if the cell was satisfied from the cache.
    pub from_cache: bool,
}

/// Telemetry from the most recent [`Executor::run`]: per-cell wall
/// times plus the merged latency histogram of every emitted cell.
///
/// Cells appear in deterministic (series, load) order; the wall-time
/// *values* are measurements and naturally vary run to run.
#[derive(Debug, Clone, Default)]
pub struct ExecTelemetry {
    /// One entry per emitted (non-skipped) cell, in output order.
    pub cells: Vec<CellTiming>,
    /// Message-latency histograms of every emitted cell, merged.
    /// Cache hits contribute nothing (the cache stores summaries only).
    pub latencies: LatencyHistogram,
}

impl ExecTelemetry {
    /// Total runner wall-clock seconds across all emitted cells (the
    /// serial cost the thread pool amortized).
    pub fn total_wall_secs(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_secs).sum()
    }
}

/// Per-series scheduling state shared by the workers.
struct SeriesState {
    /// Next unclaimed load index (indices below are claimed or filled).
    next: usize,
    /// Lowest load index known unsustainable (`usize::MAX` if none).
    /// Claims stop above it; monotone saturation makes higher loads
    /// redundant.
    cutoff: usize,
    results: Vec<Option<CellOutput>>,
    /// Which results were prefilled from the cache.
    cached: Vec<bool>,
    /// Runner wall-clock seconds per simulated cell.
    wall: Vec<f64>,
}

struct Shared {
    states: Vec<SeriesState>,
    cache: CellCache,
    simulated: usize,
}

impl Shared {
    /// Claims the lowest-index unclaimed cell of the least-advanced
    /// series (breadth-first across series, ascending within one).
    fn claim(&mut self) -> Option<(usize, usize)> {
        loop {
            let candidate = self
                .states
                .iter()
                .enumerate()
                .filter(|(_, st)| st.next < st.results.len() && st.next <= st.cutoff)
                .min_by_key(|(_, st)| st.next)
                .map(|(j, _)| j);
            let j = candidate?;
            let st = &mut self.states[j];
            let i = st.next;
            st.next += 1;
            if st.results[i].is_none() {
                return Some((j, i));
            }
            // Already filled from the cache: advance and look again.
        }
    }
}

/// The parallel experiment executor.
///
/// # Example
///
/// ```
/// use turnroute_core::DimensionOrder;
/// use turnroute_sim::exec::{Executor, SeriesJob};
/// use turnroute_sim::{patterns::Uniform, SimConfig};
/// use turnroute_topology::Mesh;
///
/// let mesh = Mesh::new_2d(4, 4);
/// let algo = DimensionOrder::new();
/// let config = SimConfig::paper().warmup_cycles(200).measure_cycles(1_000);
/// let job = SeriesJob::simulation(&mesh, &algo, &Uniform, &config, &[0.01, 0.02]);
/// let series = Executor::new(2).run(vec![job]).remove(0);
/// assert_eq!(series.points.len(), 2);
/// ```
pub struct Executor {
    threads: usize,
    cache: CellCache,
    stats: ExecStats,
    telemetry: ExecTelemetry,
    progress: Option<Arc<ExecProgress>>,
    log: Logger,
    span: String,
}

impl Executor {
    /// An executor running `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
            cache: CellCache::in_memory(),
            stats: ExecStats::default(),
            telemetry: ExecTelemetry::default(),
            progress: None,
            log: Logger::disabled(),
            span: String::new(),
        }
    }

    /// How many worker threads this executor runs cells on.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Resolves a per-cell shard request against this executor's thread
    /// budget, so intra-run sharding composes with cell-level
    /// parallelism instead of multiplying it: `0` (auto) becomes the
    /// cores left over per worker (1 when the sweep already saturates
    /// the host), an explicit count is respected as-is. Purely a speed
    /// decision — cell results are bit-identical at every shard count.
    #[must_use]
    pub fn cell_shards(&self, requested: usize) -> usize {
        match requested {
            0 => {
                let cores = std::thread::available_parallelism().map_or(1, usize::from);
                (cores / self.threads).max(1)
            }
            n => n,
        }
    }

    /// Replaces the (empty, in-memory) cell cache.
    pub fn with_cache(mut self, cache: CellCache) -> Self {
        self.cache = cache;
        self
    }

    /// Attaches a progress/cancellation surface; each [`Executor::run`]
    /// resets its counters and keeps them live while cells complete.
    pub fn with_progress(mut self, progress: Arc<ExecProgress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Attaches a structured logger: every completed cell emits a
    /// debug-level `"cell"` event tagged with `span` (the job server
    /// passes the job id, so one job's cell progress greps as one
    /// span). Disabled loggers cost nothing.
    pub fn with_oplog(mut self, log: Logger, span: impl Into<String>) -> Self {
        self.log = log;
        self.span = span.into();
        self
    }

    /// What the most recent [`Executor::run`] did.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Telemetry from the most recent [`Executor::run`]: per-cell wall
    /// times and the merged latency histogram of all emitted cells.
    pub fn telemetry(&self) -> &ExecTelemetry {
        &self.telemetry
    }

    /// The cell cache (e.g. to [`CellCache::flush`] after a run).
    pub fn cache(&self) -> &CellCache {
        &self.cache
    }

    /// Consumes the executor, returning the cache for reuse.
    pub fn into_cache(self) -> CellCache {
        self.cache
    }

    /// Runs every cell of every job and assembles one [`SweepSeries`]
    /// per job, in job order.
    ///
    /// Output is identical for any thread count: cell seeds derive from
    /// cell identity, and every point past a series' first unsustainable
    /// load is reported as a skipped placeholder even if a worker had
    /// already computed it speculatively.
    pub fn run(&mut self, jobs: Vec<SeriesJob<'_>>) -> Vec<SweepSeries> {
        self.stats = ExecStats::default();
        self.telemetry = ExecTelemetry::default();
        if let Some(p) = &self.progress {
            let total: u64 = jobs.iter().map(|j| j.loads.len() as u64).sum();
            p.completed.store(0, Ordering::Release);
            p.total.store(total, Ordering::Release);
        }

        // Prefill from the cache; a cached unsustainable point bounds
        // the series immediately.
        let mut states = Vec::with_capacity(jobs.len());
        for job in &jobs {
            let mut st = SeriesState {
                next: 0,
                cutoff: usize::MAX,
                results: vec![None; job.loads.len()],
                cached: vec![false; job.loads.len()],
                wall: vec![0.0; job.loads.len()],
            };
            for (i, &load) in job.loads.iter().enumerate() {
                if let Some(point) = self.cache.get(&cell_key(&job.cache_key, load)) {
                    if !point.sustainable {
                        st.cutoff = st.cutoff.min(i);
                    }
                    st.results[i] = Some(point.into());
                    st.cached[i] = true;
                    self.stats.cache_hits += 1;
                    if let Some(p) = &self.progress {
                        p.completed.fetch_add(1, Ordering::AcqRel);
                    }
                }
            }
            states.push(st);
        }

        let shared = Mutex::new(Shared {
            states,
            cache: std::mem::take(&mut self.cache),
            simulated: 0,
        });

        let progress = self.progress.clone();
        let log = self.log.clone();
        let span = self.span.clone();
        let work = |shared: &Mutex<Shared>| loop {
            if progress.as_deref().is_some_and(ExecProgress::is_cancelled) {
                break;
            }
            let claim = shared.lock().expect("executor poisoned").claim();
            let Some((j, i)) = claim else { break };
            let job = &jobs[j];
            let load = job.loads[i];
            let seed = derive_cell_seed(job.base_seed, &job.algorithm, &job.pattern, load);
            let started = Instant::now();
            let output = (job.runner)(load, seed);
            let wall_secs = started.elapsed().as_secs_f64();
            let mut guard = shared.lock().expect("executor poisoned");
            guard
                .cache
                .insert(cell_key(&job.cache_key, load), output.point.clone());
            guard.simulated += 1;
            let st = &mut guard.states[j];
            if !output.point.sustainable {
                st.cutoff = st.cutoff.min(i);
            }
            st.results[i] = Some(output);
            st.wall[i] = wall_secs;
            drop(guard);
            if let Some(p) = &progress {
                p.completed.fetch_add(1, Ordering::AcqRel);
            }
            if log.enabled(Level::Debug) {
                let mut ev = log
                    .event(Level::Debug, "cell")
                    .span(&span)
                    .str("algorithm", &job.algorithm)
                    .str("pattern", &job.pattern)
                    .f64("offered_load", load)
                    .f64("wall_secs", wall_secs);
                if let Some(p) = &progress {
                    ev = ev
                        .u64("cells_completed", p.completed())
                        .u64("cells_total", p.total());
                }
                ev.emit();
            }
        };

        if self.threads == 1 {
            work(&shared);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..self.threads {
                    scope.spawn(|| work(&shared));
                }
            });
        }

        let mut shared = shared.into_inner().expect("executor poisoned");
        self.stats.simulated = shared.simulated;
        self.cache = std::mem::take(&mut shared.cache);

        let cancelled = self
            .progress
            .as_deref()
            .is_some_and(ExecProgress::is_cancelled);

        // Assemble: everything past a series' first unsustainable load
        // is a skipped placeholder, computed or not. Telemetry is built
        // here, from emitted cells only, so its cell order — and which
        // histograms merge — never depends on worker scheduling.
        let mut out = Vec::with_capacity(jobs.len());
        for (job, st) in jobs.iter().zip(shared.states.iter_mut()) {
            let mut points = Vec::with_capacity(job.loads.len());
            for (i, &load) in job.loads.iter().enumerate() {
                if i <= st.cutoff {
                    let Some(output) = st.results[i].take() else {
                        // Only a cancelled run leaves holes at or below
                        // the cutoff; report them as skipped.
                        assert!(
                            cancelled,
                            "cells at or below the cutoff are always computed"
                        );
                        self.stats.skipped += 1;
                        points.push(SweepPoint::skipped_at(load));
                        continue;
                    };
                    if st.cached[i] {
                        self.stats.emitted_from_cache += 1;
                    } else {
                        self.stats.emitted_simulated += 1;
                    }
                    self.telemetry.latencies.merge(&output.latencies);
                    self.telemetry.cells.push(CellTiming {
                        algorithm: job.algorithm.clone(),
                        pattern: job.pattern.clone(),
                        offered_load: load,
                        wall_secs: st.wall[i],
                        from_cache: st.cached[i],
                    });
                    points.push(output.point);
                } else {
                    self.stats.skipped += 1;
                    points.push(SweepPoint::skipped_at(load));
                }
            }
            out.push(SweepSeries {
                algorithm: job.algorithm.clone(),
                pattern: job.pattern.clone(),
                faults: job.faults,
                disconnected: job.disconnected,
                points,
            });
        }
        if let Some(p) = &self.progress {
            if !cancelled {
                // Saturation-skipped cells count as accounted for: a
                // finished run always reads completed == total.
                p.completed.store(p.total(), Ordering::Release);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A fake runner: sustainable below `sat`, counting invocations.
    fn fake_job<'a>(
        name: &str,
        loads: &'a [f64],
        sat: f64,
        calls: &'a AtomicUsize,
    ) -> SeriesJob<'a> {
        SeriesJob::new(
            name.to_owned(),
            "fake",
            format!("test|{name}"),
            7,
            loads,
            move |load, seed| {
                calls.fetch_add(1, Ordering::SeqCst);
                SweepPoint {
                    offered_load: load,
                    throughput: load * 100.0 + (seed % 7) as f64,
                    avg_latency_usec: Some(load * 2.0),
                    p95_latency_usec: None,
                    avg_hops: Some(3.0),
                    delivered: (load * 1000.0) as u64,
                    stranded: 0,
                    sustainable: load < sat,
                    skipped: false,
                }
            },
        )
    }

    #[test]
    fn seeds_depend_on_every_component() {
        let s = derive_cell_seed(1, "a", "u", 0.1);
        assert_ne!(s, derive_cell_seed(2, "a", "u", 0.1));
        assert_ne!(s, derive_cell_seed(1, "b", "u", 0.1));
        assert_ne!(s, derive_cell_seed(1, "a", "v", 0.1));
        assert_ne!(s, derive_cell_seed(1, "a", "u", 0.2));
        assert_eq!(s, derive_cell_seed(1, "a", "u", 0.1));
        // Length-delimited: shifting a byte between names changes it.
        assert_ne!(
            derive_cell_seed(1, "ab", "c", 0.1),
            derive_cell_seed(1, "a", "bc", 0.1)
        );
    }

    #[test]
    fn skip_rule_reports_everything_past_the_first_unsustainable() {
        let loads = [0.1, 0.2, 0.3, 0.4, 0.5];
        let calls = AtomicUsize::new(0);
        for threads in [1, 2, 8] {
            calls.store(0, Ordering::SeqCst);
            let mut ex = Executor::new(threads);
            let series = ex
                .run(vec![fake_job("algo", &loads, 0.25, &calls)])
                .remove(0);
            assert_eq!(series.points.len(), 5);
            assert!(series.points[0].sustainable && !series.points[0].skipped);
            assert!(series.points[1].sustainable && !series.points[1].skipped);
            assert!(!series.points[2].sustainable && !series.points[2].skipped);
            assert!(series.points[3].skipped && series.points[4].skipped);
            assert_eq!(ex.stats().skipped, 2);
            // Serial never runs past the cutoff; parallel may
            // speculate, but never claims beyond one past it.
            if threads == 1 {
                assert_eq!(calls.load(Ordering::SeqCst), 3);
            }
        }
    }

    #[test]
    fn results_are_invariant_under_thread_count() {
        let loads = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3];
        let calls = AtomicUsize::new(0);
        let runs: Vec<Vec<SweepSeries>> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                Executor::new(threads).run(vec![
                    fake_job("a", &loads, 0.22, &calls),
                    fake_job("b", &loads, 1.0, &calls),
                ])
            })
            .collect();
        for other in &runs[1..] {
            for (x, y) in runs[0].iter().zip(other.iter()) {
                assert_eq!(x.to_csv(), y.to_csv());
            }
        }
    }

    #[test]
    fn cache_avoids_resimulation_and_preserves_bytes() {
        let calls = AtomicUsize::new(0);
        let mut ex = Executor::new(2);
        let first = ex
            .run(vec![fake_job("algo", &[0.1, 0.2], 1.0, &calls)])
            .remove(0);
        assert_eq!(ex.stats().simulated, 2);
        let cache = ex.into_cache();
        assert_eq!(cache.len(), 2);

        // Extended grid: only the new point simulates.
        let mut ex = Executor::new(2).with_cache(cache);
        let second = ex
            .run(vec![fake_job("algo", &[0.1, 0.2, 0.3], 1.0, &calls)])
            .remove(0);
        assert_eq!(ex.stats().cache_hits, 2);
        assert_eq!(ex.stats().simulated, 1);
        assert_eq!(
            first.to_csv(),
            second
                .to_csv()
                .lines()
                .take(2)
                .map(|l| format!("{l}\n"))
                .collect::<String>()
        );
    }

    #[test]
    fn cache_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("turnroute-exec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("cache-{}.tsv", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let calls = AtomicUsize::new(0);
        let mut ex = Executor::new(1).with_cache(CellCache::at_path(&path).unwrap());
        let first = ex
            .run(vec![fake_job("algo", &[0.1, 0.2], 0.15, &calls)])
            .remove(0);
        ex.cache().flush().unwrap();

        let mut ex2 = Executor::new(4).with_cache(CellCache::at_path(&path).unwrap());
        let second = ex2
            .run(vec![fake_job("algo", &[0.1, 0.2], 0.15, &calls)])
            .remove(0);
        assert_eq!(ex2.stats().simulated, 0);
        assert_eq!(first.to_csv(), second.to_csv());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cached_unsustainable_points_bound_the_series() {
        let calls = AtomicUsize::new(0);
        let mut ex = Executor::new(1);
        ex.run(vec![fake_job("algo", &[0.1, 0.2, 0.3], 0.15, &calls)]);
        let cache = ex.into_cache();

        // Re-run the same grid: the cached unsustainable 0.2 bounds the
        // series, so nothing simulates at all.
        calls.store(0, Ordering::SeqCst);
        let mut ex = Executor::new(2).with_cache(cache);
        let series = ex
            .run(vec![fake_job("algo", &[0.1, 0.2, 0.3], 0.15, &calls)])
            .remove(0);
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert!(series.points[2].skipped);
    }

    /// A fake runner whose cells carry a one-value latency histogram
    /// (`load * 1000` cycles), so merge behaviour is observable.
    fn hist_job<'a>(loads: &'a [f64], sat: f64) -> SeriesJob<'a> {
        SeriesJob::new("h", "fake", "test|h", 7, loads, move |load, _seed| {
            CellOutput {
                point: SweepPoint {
                    offered_load: load,
                    throughput: load * 100.0,
                    avg_latency_usec: Some(load),
                    p95_latency_usec: None,
                    avg_hops: None,
                    delivered: 0,
                    stranded: 0,
                    sustainable: load < sat,
                    skipped: false,
                },
                latencies: LatencyHistogram::from_values(&[(load * 1000.0) as u64]),
            }
        })
    }

    #[test]
    fn telemetry_lists_emitted_cells_in_output_order() {
        let calls = AtomicUsize::new(0);
        let mut ex = Executor::new(2);
        ex.run(vec![fake_job("algo", &[0.1, 0.2], 1.0, &calls)]);
        let cache = ex.into_cache();

        // Extended grid over a warm cache: two cache hits, one fresh.
        let mut ex = Executor::new(2).with_cache(cache);
        ex.run(vec![fake_job("algo", &[0.1, 0.2, 0.3], 1.0, &calls)]);
        let stats = ex.stats();
        assert_eq!(stats.emitted_from_cache, 2);
        assert_eq!(stats.emitted_simulated, 1);

        let cells = &ex.telemetry().cells;
        assert_eq!(cells.len(), 3);
        let loads: Vec<f64> = cells.iter().map(|c| c.offered_load).collect();
        assert_eq!(loads, vec![0.1, 0.2, 0.3]);
        assert!(cells[0].from_cache && cells[1].from_cache);
        assert!(!cells[2].from_cache);
        // Cache hits cost no runner time; fresh cells are timed.
        assert_eq!(cells[0].wall_secs, 0.0);
        assert_eq!(cells[1].wall_secs, 0.0);
        assert!(cells[2].wall_secs >= 0.0);
        assert_eq!(ex.telemetry().total_wall_secs(), cells[2].wall_secs);
    }

    #[test]
    fn telemetry_merges_histograms_of_emitted_cells_only() {
        for threads in [1, 4] {
            let mut ex = Executor::new(threads);
            ex.run(vec![hist_job(&[0.1, 0.2, 0.3], 0.15)]);
            // 0.1 is sustainable, 0.2 is the first unsustainable (still
            // emitted), 0.3 is past the cutoff: even if a worker
            // speculatively computed it, its histogram must not merge.
            let h = &ex.telemetry().latencies;
            assert_eq!(h.len(), 2, "threads={threads}");
            assert_eq!(h.min(), Some(100));
            assert_eq!(h.max(), Some(200));
        }
    }

    #[test]
    fn progress_counts_every_cell_and_finishes_full() {
        let calls = AtomicUsize::new(0);
        let progress = ExecProgress::new();
        let mut ex = Executor::new(2).with_progress(progress.clone());
        // Saturates at 0.15: the cells past the cutoff are skipped, but
        // a finished run still reads completed == total.
        ex.run(vec![fake_job("algo", &[0.1, 0.2, 0.3, 0.4], 0.15, &calls)]);
        assert_eq!(progress.total(), 4);
        assert_eq!(progress.completed(), 4);
        assert!(!progress.is_cancelled());

        // Cache prefills count as completed cells on the next run.
        let cache = ex.into_cache();
        let progress = ExecProgress::new();
        let mut ex = Executor::new(1)
            .with_cache(cache)
            .with_progress(progress.clone());
        ex.run(vec![fake_job("algo", &[0.1, 0.2, 0.3, 0.4], 0.15, &calls)]);
        assert_eq!(progress.completed(), 4);
    }

    #[test]
    fn cancellation_stops_claiming_and_reports_skips() {
        let calls = AtomicUsize::new(0);
        let progress = ExecProgress::new();
        // Cancel before the run even starts: no cell may simulate.
        progress.cancel();
        let mut ex = Executor::new(2).with_progress(progress.clone());
        let series = ex
            .run(vec![fake_job("algo", &[0.1, 0.2, 0.3], 1.0, &calls)])
            .remove(0);
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert_eq!(series.points.len(), 3);
        assert!(series.points.iter().all(|p| p.skipped));
        assert_eq!(ex.stats().skipped, 3);
        assert!(progress.completed() < progress.total());
    }

    #[test]
    fn ascending_loads_are_enforced() {
        let result = std::panic::catch_unwind(|| {
            SeriesJob::new("a", "p", "k", 1, &[0.2, 0.1], |_, _| -> SweepPoint {
                unreachable!()
            })
        });
        assert!(result.is_err());
    }
}
