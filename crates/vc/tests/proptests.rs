//! Randomized invariants of the virtual-channel layer.
//!
//! Formerly proptest properties; now seeded loops over the vendored
//! RNG so the suite builds offline.

use turnroute_core::adaptiveness::fully_adaptive_shortest_paths;
use turnroute_core::{DimensionOrder, NegativeFirst, WestFirst};
use turnroute_rng::{Rng, StdRng};
use turnroute_sim::patterns::Uniform;
use turnroute_sim::{SimConfig, Simulation};
use turnroute_topology::{Mesh, NodeId, Topology, Torus};
use turnroute_vc::{
    count_physical_paths, mady_may_follow, vc_dependency_graph, walk_vc, DatelineDimensionOrder,
    MadY, SingleClass, VcRoutingAlgorithm, VcSimulation, VcTable, VirtualDirection,
};

const CASES: usize = 32;

/// Draws a distinct `(a, b)` node pair in `0..n`.
fn distinct_pair(rng: &mut StdRng, n: usize) -> (NodeId, NodeId) {
    let a = rng.random_range(0..n);
    let mut b = rng.random_range(0..n);
    while b == a {
        b = rng.random_range(0..n);
    }
    (NodeId::new(a), NodeId::new(b))
}

/// Mad-y is fully adaptive on every mesh shape and pair.
#[test]
fn mady_full_adaptivity() {
    let mut rng = StdRng::seed_from_u64(0xE001);
    for _ in 0..CASES {
        let m = rng.random_range(2..8usize);
        let n = rng.random_range(2..8usize);
        let mesh = Mesh::new_2d(m, n);
        let (s, d) = distinct_pair(&mut rng, m * n);
        let mady = MadY::new();
        let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
        assert_eq!(
            count_physical_paths(&mady, &mesh, &table, s, d),
            fully_adaptive_shortest_paths(&mesh, s, d),
            "{m}x{n} {s}->{d}"
        );
    }
}

/// The mad-y lane relation stays acyclic on random mesh shapes.
#[test]
fn mady_cdg_acyclic() {
    let mut rng = StdRng::seed_from_u64(0xE002);
    for _ in 0..CASES {
        let m = rng.random_range(2..9usize);
        let n = rng.random_range(2..9usize);
        let mesh = Mesh::new_2d(m, n);
        let table = VcTable::new(&mesh, &[1, 2]);
        let cdg = vc_dependency_graph(&mesh, &table, |_, from, to| mady_may_follow(from.1, to.1));
        assert!(cdg.is_acyclic(), "{m}x{n}");
    }
}

/// Mad-y walks are minimal.
#[test]
fn mady_walks_minimal() {
    let mut rng = StdRng::seed_from_u64(0xE003);
    for _ in 0..CASES {
        let m = rng.random_range(3..8usize);
        let mesh = Mesh::new_2d(m, m);
        let (s, d) = distinct_pair(&mut rng, m * m);
        let mady = MadY::new();
        let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
        let path = walk_vc(&mady, &mesh, &table, s, d);
        assert_eq!(path.len() - 1, mesh.distance(s, d));
    }
}

/// Dateline routing is minimal on random tori.
#[test]
fn dateline_walks_minimal() {
    let mut rng = StdRng::seed_from_u64(0xE004);
    for _ in 0..CASES {
        let k = rng.random_range(3..8usize);
        let torus = Torus::new(k, 2);
        let (s, d) = distinct_pair(&mut rng, torus.num_nodes());
        let algo = DatelineDimensionOrder::new();
        let table = VcTable::new(&torus, &algo.provisioning(&torus));
        let path = walk_vc(&algo, &torus, &table, s, d);
        assert_eq!(path.len() - 1, torus.distance(s, d));
    }
}

/// The VC engine conserves flits and ownership under random loads.
#[test]
fn vc_engine_conserves_flits() {
    let mut rng = StdRng::seed_from_u64(0xE005);
    for _ in 0..CASES {
        let seed = rng.random_range(0..500u64);
        let load = rng.random_range(0.02f64..0.3);
        let mesh = Mesh::new_2d(4, 4);
        let mady = MadY::new();
        let config = SimConfig::paper()
            .injection_rate(load)
            .warmup_cycles(0)
            .measure_cycles(0)
            .seed(seed);
        let mut sim = VcSimulation::new(&mesh, &mady, &Uniform, config);
        for _ in 0..400 {
            sim.step();
        }
        for p in sim.packets() {
            let (a, b, c) = p.flit_counts();
            assert_eq!(a + b + c, p.length);
            for &vc in p.worm() {
                assert_eq!(sim.vc_owner(vc), Some(p.id));
            }
        }
    }
}

/// SingleClass in the VC engine delivers the same message count as
/// the plain engine for identical seeds and loads (one lane, same
/// semantics).
#[test]
fn single_class_engines_agree() {
    let mut rng = StdRng::seed_from_u64(0xE006);
    for _ in 0..8 {
        let seed = rng.random_range(0..200u64);
        let mesh = Mesh::new_2d(4, 4);
        let config = SimConfig::paper()
            .injection_rate(0.06)
            .warmup_cycles(500)
            .measure_cycles(3_000)
            .seed(seed);
        let plain_algo = WestFirst::minimal();
        let plain = Simulation::new(&mesh, &plain_algo, &Uniform, config.clone()).run();
        let vc_algo = SingleClass::new(WestFirst::minimal());
        let vc = VcSimulation::new(&mesh, &vc_algo, &Uniform, config).run();
        assert_eq!(plain.total_generated, vc.total_generated);
        assert_eq!(plain.total_delivered, vc.total_delivered);
        assert_eq!(plain.metrics.latencies, vc.metrics.latencies);
    }
}

/// Lane candidates never include an unprovisioned class.
#[test]
fn route_vc_respects_provisioning() {
    let mut rng = StdRng::seed_from_u64(0xE007);
    for _ in 0..CASES {
        let which = rng.random_range(0..3usize);
        let mesh = Mesh::new_2d(6, 6);
        let (a, b) = distinct_pair(&mut rng, 36);
        let algo: Box<dyn VcRoutingAlgorithm> = match which {
            0 => Box::new(MadY::new()),
            1 => Box::new(SingleClass::new(DimensionOrder::new())),
            _ => Box::new(SingleClass::new(NegativeFirst::minimal())),
        };
        let table = VcTable::new(&mesh, &algo.provisioning(&mesh));
        let vdirs = algo.route_vc(&mesh, &table, a, b, None);
        for v in vdirs.iter() {
            assert!(table.vc_from(&mesh, a, v).is_some(), "{v}");
        }
    }
}

/// Virtual-direction indices round trip for every dim/class combo.
#[test]
fn vdir_index_roundtrip() {
    for index in 0..128usize {
        let v = VirtualDirection::from_index(index);
        assert_eq!(v.index(), index);
    }
}

/// Dateline routing never deadlocks on a saturated torus — the dynamic
/// counterpart of its acyclic lane dependency graph.
#[test]
fn dateline_survives_saturating_stress() {
    let torus = Torus::new(5, 2);
    let algo = DatelineDimensionOrder::new();
    let config = SimConfig::paper()
        .injection_rate(0.8)
        .warmup_cycles(0)
        .measure_cycles(10_000)
        .deadlock_threshold(1_500)
        .seed(41);
    let mut sim = VcSimulation::new(&torus, &algo, &Uniform, config);
    for _ in 0..12_000 {
        assert!(sim.step().is_none(), "dateline routing must not deadlock");
    }
    let delivered = sim
        .packets()
        .iter()
        .filter(|p| p.delivered_at.is_some())
        .count();
    assert!(delivered > 100, "{delivered}");
}

/// The single-lane torus discipline (no dateline) deadlocks on the same
/// load: the rings need the extra lane.
#[test]
fn single_lane_torus_dimension_order_deadlocks() {
    let torus = Torus::new(5, 2);
    let algo = SingleClass::new(DimensionOrder::new());
    let config = SimConfig::paper()
        .injection_rate(0.8)
        .warmup_cycles(0)
        .measure_cycles(60_000)
        .deadlock_threshold(2_000)
        .seed(41);
    let mut sim = VcSimulation::new(&torus, &algo, &Uniform, config);
    let mut deadlocked = false;
    for _ in 0..60_000 {
        if sim.step().is_some() {
            deadlocked = true;
            break;
        }
    }
    assert!(deadlocked, "plain dimension order must deadlock on a torus");
}
