//! Property-based invariants of the virtual-channel layer.

use proptest::prelude::*;
use turnroute_core::adaptiveness::fully_adaptive_shortest_paths;
use turnroute_core::{DimensionOrder, NegativeFirst, RoutingAlgorithm, WestFirst};
use turnroute_sim::patterns::Uniform;
use turnroute_sim::{SimConfig, Simulation};
use turnroute_topology::{Mesh, NodeId, Topology, Torus};
use turnroute_vc::{
    count_physical_paths, mady_may_follow, vc_dependency_graph, walk_vc,
    DatelineDimensionOrder, MadY, SingleClass, VcRoutingAlgorithm, VcSimulation, VcTable,
    VirtualDirection,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mad-y is fully adaptive on every mesh shape and pair.
    #[test]
    fn mady_full_adaptivity(
        m in 2usize..8,
        n in 2usize..8,
        a in 0usize..64,
        b in 0usize..64,
    ) {
        let mesh = Mesh::new_2d(m, n);
        let (a, b) = (a % (m * n), b % (m * n));
        prop_assume!(a != b);
        let mady = MadY::new();
        let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
        let (s, d) = (NodeId::new(a), NodeId::new(b));
        prop_assert_eq!(
            count_physical_paths(&mady, &mesh, &table, s, d),
            fully_adaptive_shortest_paths(&mesh, s, d)
        );
    }

    /// The mad-y lane relation stays acyclic on random mesh shapes.
    #[test]
    fn mady_cdg_acyclic(m in 2usize..9, n in 2usize..9) {
        let mesh = Mesh::new_2d(m, n);
        let table = VcTable::new(&mesh, &[1, 2]);
        let cdg = vc_dependency_graph(&mesh, &table, |_, from, to| {
            mady_may_follow(from.1, to.1)
        });
        prop_assert!(cdg.is_acyclic());
    }

    /// Mad-y walks are minimal.
    #[test]
    fn mady_walks_minimal(m in 3usize..8, a in 0usize..64, b in 0usize..64) {
        let mesh = Mesh::new_2d(m, m);
        let (a, b) = (a % (m * m), b % (m * m));
        prop_assume!(a != b);
        let mady = MadY::new();
        let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
        let path = walk_vc(&mady, &mesh, &table, NodeId::new(a), NodeId::new(b));
        prop_assert_eq!(path.len() - 1, mesh.distance(NodeId::new(a), NodeId::new(b)));
    }

    /// Dateline routing is minimal on random tori.
    #[test]
    fn dateline_walks_minimal(k in 3usize..8, a in 0usize..64, b in 0usize..64) {
        let torus = Torus::new(k, 2);
        let (a, b) = (a % torus.num_nodes(), b % torus.num_nodes());
        prop_assume!(a != b);
        let algo = DatelineDimensionOrder::new();
        let table = VcTable::new(&torus, &algo.provisioning(&torus));
        let path = walk_vc(&algo, &torus, &table, NodeId::new(a), NodeId::new(b));
        prop_assert_eq!(path.len() - 1, torus.distance(NodeId::new(a), NodeId::new(b)));
    }

    /// The VC engine conserves flits and ownership under random loads.
    #[test]
    fn vc_engine_conserves_flits(seed in 0u64..500, load in 0.02f64..0.3) {
        let mesh = Mesh::new_2d(4, 4);
        let mady = MadY::new();
        let config = SimConfig::paper()
            .injection_rate(load)
            .warmup_cycles(0)
            .measure_cycles(0)
            .seed(seed);
        let mut sim = VcSimulation::new(&mesh, &mady, &Uniform, config);
        for _ in 0..400 {
            sim.step();
        }
        for p in sim.packets() {
            let (a, b, c) = p.flit_counts();
            prop_assert_eq!(a + b + c, p.length);
            for &vc in p.worm() {
                prop_assert_eq!(sim.vc_owner(vc), Some(p.id));
            }
        }
    }

    /// SingleClass in the VC engine delivers the same message count as
    /// the plain engine for identical seeds and loads (one lane, same
    /// semantics).
    #[test]
    fn single_class_engines_agree(seed in 0u64..200) {
        let mesh = Mesh::new_2d(4, 4);
        let config = SimConfig::paper()
            .injection_rate(0.06)
            .warmup_cycles(500)
            .measure_cycles(3_000)
            .seed(seed);
        let plain_algo = WestFirst::minimal();
        let plain = Simulation::new(&mesh, &plain_algo, &Uniform, config.clone()).run();
        let vc_algo = SingleClass::new(WestFirst::minimal());
        let vc = VcSimulation::new(&mesh, &vc_algo, &Uniform, config).run();
        prop_assert_eq!(plain.total_generated, vc.total_generated);
        prop_assert_eq!(plain.total_delivered, vc.total_delivered);
        prop_assert_eq!(plain.metrics.latencies, vc.metrics.latencies);
    }

    /// Lane candidates never include an unprovisioned class.
    #[test]
    fn route_vc_respects_provisioning(
        which in 0u8..3,
        a in 0usize..36,
        b in 0usize..36,
    ) {
        let mesh = Mesh::new_2d(6, 6);
        let (a, b) = (a % 36, b % 36);
        prop_assume!(a != b);
        let algo: Box<dyn VcRoutingAlgorithm> = match which {
            0 => Box::new(MadY::new()),
            1 => Box::new(SingleClass::new(DimensionOrder::new())),
            _ => Box::new(SingleClass::new(NegativeFirst::minimal())),
        };
        let table = VcTable::new(&mesh, &algo.provisioning(&mesh));
        let vdirs = algo.route_vc(&mesh, &table, NodeId::new(a), NodeId::new(b), None);
        for v in vdirs.iter() {
            prop_assert!(table.vc_from(&mesh, NodeId::new(a), v).is_some(), "{v}");
        }
    }

    /// Virtual-direction indices round trip for every dim/class combo.
    #[test]
    fn vdir_index_roundtrip(index in 0usize..128) {
        let v = VirtualDirection::from_index(index);
        prop_assert_eq!(v.index(), index);
    }
}

/// Dateline routing never deadlocks on a saturated torus — the dynamic
/// counterpart of its acyclic lane dependency graph.
#[test]
fn dateline_survives_saturating_stress() {
    let torus = Torus::new(5, 2);
    let algo = DatelineDimensionOrder::new();
    let config = SimConfig::paper()
        .injection_rate(0.8)
        .warmup_cycles(0)
        .measure_cycles(10_000)
        .deadlock_threshold(1_500)
        .seed(41);
    let mut sim = VcSimulation::new(&torus, &algo, &Uniform, config);
    for _ in 0..12_000 {
        assert!(sim.step().is_none(), "dateline routing must not deadlock");
    }
    let delivered = sim
        .packets()
        .iter()
        .filter(|p| p.delivered_at.is_some())
        .count();
    assert!(delivered > 100, "{delivered}");
}

/// The single-lane torus discipline (no dateline) deadlocks on the same
/// load: the rings need the extra lane.
#[test]
fn single_lane_torus_dimension_order_deadlocks() {
    let torus = Torus::new(5, 2);
    let algo = SingleClass::new(DimensionOrder::new());
    let config = SimConfig::paper()
        .injection_rate(0.8)
        .warmup_cycles(0)
        .measure_cycles(60_000)
        .deadlock_threshold(2_000)
        .seed(41);
    let mut sim = VcSimulation::new(&torus, &algo, &Uniform, config);
    let mut deadlocked = false;
    for _ in 0..60_000 {
        if sim.step().is_some() {
            deadlocked = true;
            break;
        }
    }
    assert!(deadlocked, "plain dimension order must deadlock on a torus");
}
