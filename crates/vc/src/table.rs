//! The virtual-channel table: how many buffered lanes each physical
//! channel carries, and dense ids for them.

use crate::vdir::{VirtualDirection, MAX_CLASSES};
use turnroute_topology::{ChannelId, Direction, NodeId, Topology};

/// Identifies one virtual channel: a lane of a physical channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualChannelId(u32);

impl VirtualChannelId {
    /// The dense index of this virtual channel.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-dimension virtual-channel provisioning over a topology: every
/// physical channel along dimension `d` carries `classes[d]` lanes.
///
/// # Example
///
/// ```
/// use turnroute_vc::VcTable;
/// use turnroute_topology::{Mesh, Topology};
///
/// let mesh = Mesh::new_2d(4, 4);
/// // mad-y provisioning: single x lanes, double y lanes.
/// let table = VcTable::new(&mesh, &[1, 2]);
/// // 24 x-channels * 1 + 24 y-channels * 2.
/// assert_eq!(table.num_virtual_channels(), 24 + 48);
/// ```
#[derive(Debug, Clone)]
pub struct VcTable {
    classes: Vec<u8>,
    /// Prefix offsets: virtual ids of channel `c` start at `offsets[c]`.
    offsets: Vec<u32>,
    total: u32,
}

impl VcTable {
    /// Builds the table for `topo` with `classes[d]` lanes per channel
    /// of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `classes` has the wrong length, or any entry is 0 or
    /// exceeds [`MAX_CLASSES`].
    pub fn new(topo: &dyn Topology, classes: &[u8]) -> Self {
        assert_eq!(
            classes.len(),
            topo.num_dims(),
            "one class count per dimension"
        );
        assert!(
            classes.iter().all(|&c| (1..=MAX_CLASSES).contains(&c)),
            "class counts must be in 1..={MAX_CLASSES}"
        );
        let mut offsets = Vec::with_capacity(topo.num_channels());
        let mut total = 0u32;
        for ch in topo.channels() {
            offsets.push(total);
            total += classes[ch.dir.dim()] as u32;
        }
        VcTable {
            classes: classes.to_vec(),
            offsets,
            total,
        }
    }

    /// Total number of virtual channels.
    pub fn num_virtual_channels(&self) -> usize {
        self.total as usize
    }

    /// Lanes per channel of dimension `dim`.
    pub fn classes(&self, dim: usize) -> u8 {
        self.classes[dim]
    }

    /// The virtual channel for (`channel`, `class`).
    ///
    /// # Panics
    ///
    /// Panics if the class exceeds the channel's lane count.
    pub fn vc(&self, topo: &dyn Topology, channel: ChannelId, class: u8) -> VirtualChannelId {
        let dim = topo.channel(channel).dir.dim();
        assert!(
            class < self.classes[dim],
            "class out of range for dimension {dim}"
        );
        VirtualChannelId(self.offsets[channel.index()] + class as u32)
    }

    /// The virtual channel leaving `node` in virtual direction `v`, if
    /// the physical channel exists and `v.class()` is provisioned.
    pub fn vc_from(
        &self,
        topo: &dyn Topology,
        node: NodeId,
        v: VirtualDirection,
    ) -> Option<VirtualChannelId> {
        if v.class() >= self.classes[v.dir().dim()] {
            return None;
        }
        let ch = topo.channel_from(node, v.dir())?;
        Some(VirtualChannelId(
            self.offsets[ch.index()] + v.class() as u32,
        ))
    }

    /// Decomposes a virtual channel into its physical channel and class.
    pub fn decompose(&self, vc: VirtualChannelId) -> (ChannelId, u8) {
        // Binary search the offsets.
        let i = match self.offsets.binary_search(&vc.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (ChannelId::new(i), (vc.0 - self.offsets[i]) as u8)
    }

    /// The virtual direction a virtual channel routes packets in.
    pub fn vdir_of(&self, topo: &dyn Topology, vc: VirtualChannelId) -> VirtualDirection {
        let (ch, class) = self.decompose(vc);
        VirtualDirection::new(topo.channel(ch).dir, class)
    }

    /// All `(physical channel, class)` pairs, in id order.
    pub fn iter(&self, topo: &dyn Topology) -> Vec<(ChannelId, u8)> {
        let mut out = Vec::with_capacity(self.num_virtual_channels());
        for (i, ch) in topo.channels().iter().enumerate() {
            for class in 0..self.classes[ch.dir.dim()] {
                out.push((ChannelId::new(i), class));
            }
        }
        out
    }

    /// The virtual directions available from `node`, one per provisioned
    /// lane of each existing output channel.
    pub fn vdirs_from(&self, topo: &dyn Topology, node: NodeId) -> Vec<VirtualDirection> {
        let mut out = Vec::new();
        for dir in Direction::all(topo.num_dims()) {
            if topo.channel_from(node, dir).is_some() {
                for class in 0..self.classes[dir.dim()] {
                    out.push(VirtualDirection::new(dir, class));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{Mesh, Torus};

    #[test]
    fn counts_and_round_trips() {
        let mesh = Mesh::new_2d(4, 3);
        let table = VcTable::new(&mesh, &[1, 2]);
        // x channels: 2 * 3 * 3 = 18; y channels: 2 * 4 * 2 = 16.
        assert_eq!(table.num_virtual_channels(), 18 + 32);
        for (ch, class) in table.iter(&mesh) {
            let vc = table.vc(&mesh, ch, class);
            assert_eq!(table.decompose(vc), (ch, class));
        }
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let mesh = Mesh::new_2d(3, 3);
        let table = VcTable::new(&mesh, &[2, 2]);
        let mut seen = vec![false; table.num_virtual_channels()];
        for (ch, class) in table.iter(&mesh) {
            let vc = table.vc(&mesh, ch, class);
            assert!(!seen[vc.index()], "duplicate id");
            seen[vc.index()] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn vc_from_respects_provisioning() {
        let mesh = Mesh::new_2d(4, 4);
        let table = VcTable::new(&mesh, &[1, 2]);
        let node = mesh.node_at(&[1, 1].into());
        use turnroute_topology::Direction;
        // x has one lane.
        assert!(table
            .vc_from(&mesh, node, VirtualDirection::new(Direction::EAST, 0))
            .is_some());
        assert!(table
            .vc_from(&mesh, node, VirtualDirection::new(Direction::EAST, 1))
            .is_none());
        // y has two.
        assert!(table
            .vc_from(&mesh, node, VirtualDirection::new(Direction::NORTH, 1))
            .is_some());
        // Mesh edge: no channel at all.
        let corner = mesh.node_at(&[0, 0].into());
        assert!(table
            .vc_from(&mesh, corner, VirtualDirection::new(Direction::WEST, 0))
            .is_none());
    }

    #[test]
    fn vdir_of_matches_channel_direction() {
        let torus = Torus::new(4, 2);
        let table = VcTable::new(&torus, &[2, 2]);
        for (ch, class) in table.iter(&torus) {
            let vc = table.vc(&torus, ch, class);
            let vdir = table.vdir_of(&torus, vc);
            assert_eq!(vdir.dir(), torus.channel(ch).dir);
            assert_eq!(vdir.class(), class);
        }
    }

    #[test]
    fn vdirs_from_interior_node() {
        let mesh = Mesh::new_2d(4, 4);
        let table = VcTable::new(&mesh, &[1, 2]);
        let center = mesh.node_at(&[1, 1].into());
        // 2 x-dirs * 1 + 2 y-dirs * 2 = 6.
        assert_eq!(table.vdirs_from(&mesh, center).len(), 6);
    }
}
