//! A wormhole engine with virtual channels: buffered lanes per physical
//! link, with the link's bandwidth multiplexed among them cycle by
//! cycle.
//!
//! Semantics mirror `turnroute_sim::Simulation` (same config, traffic,
//! metrics and watchdog); the differences are exactly the two things
//! virtual channels add: a header is granted a *lane*, and a worm
//! advances only when every physical link a flit of its would cross
//! this cycle still has bandwidth left. With one lane everywhere the
//! two engines behave identically, which the tests pin down.

use crate::routing::VcRoutingAlgorithm;
use crate::table::{VcTable, VirtualChannelId};
use crate::vdir::VirtualDirection;
use std::collections::VecDeque;
use turnroute_rng::StdRng;
use turnroute_sim::patterns::TrafficPattern;
use turnroute_sim::{
    DeadlockReport, MetricsCollector, RunOutcome, SimConfig, SimReport, TrafficSource,
};
use turnroute_topology::{NodeId, Topology};

/// Identifies a packet in a [`VcSimulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcPacketId(u64);

impl VcPacketId {
    /// The dense creation-order index.
    pub fn index(self) -> u64 {
        self.0
    }
}

/// A message and, once injected, its worm over virtual channels.
#[derive(Debug, Clone)]
pub struct VcPacket {
    /// This packet's id.
    pub id: VcPacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Length in flits.
    pub length: u32,
    /// Creation cycle.
    pub created_at: u64,
    /// Injection cycle, once in flight.
    pub injected_at: Option<u64>,
    /// Delivery cycle, once delivered.
    pub delivered_at: Option<u64>,
    worm: Vec<VirtualChannelId>,
    flits_at_source: u32,
    flits_consumed: u32,
    head_node: NodeId,
    arrived: Option<VirtualDirection>,
    head_arrival: u64,
    hops: u32,
}

impl VcPacket {
    /// Hops taken by the header.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// The lanes currently occupied, tail first.
    pub fn worm(&self) -> &[VirtualChannelId] {
        &self.worm
    }

    /// Flit conservation components: (at source, in network, consumed).
    pub fn flit_counts(&self) -> (u32, u32, u32) {
        (
            self.flits_at_source,
            self.worm.len() as u32,
            self.flits_consumed,
        )
    }
}

/// A flit-level wormhole simulation over virtual channels.
///
/// # Example
///
/// ```
/// use turnroute_sim::{patterns::Transpose, SimConfig};
/// use turnroute_vc::{MadY, VcSimulation};
/// use turnroute_topology::Mesh;
///
/// let mesh = Mesh::new_2d(8, 8);
/// let mady = MadY::new();
/// let config = SimConfig::paper()
///     .injection_rate(0.05)
///     .warmup_cycles(1_000)
///     .measure_cycles(4_000);
/// let report = VcSimulation::new(&mesh, &mady, &Transpose, config).run();
/// assert!(report.sustainable());
/// ```
pub struct VcSimulation<'a> {
    topo: &'a dyn Topology,
    algo: &'a dyn VcRoutingAlgorithm,
    table: VcTable,
    pattern: &'a dyn TrafficPattern,
    config: SimConfig,
    rng: StdRng,
    source: TrafficSource,
    cycle: u64,
    packets: Vec<VcPacket>,
    queues: Vec<VecDeque<VcPacketId>>,
    injecting: Vec<Option<VcPacketId>>,
    ejecting: Vec<Option<VcPacketId>>,
    vc_owner: Vec<Option<VcPacketId>>,
    in_flight: Vec<VcPacketId>,
    last_progress: u64,
    generation_enabled: bool,
    metrics: MetricsCollector,
    total_delivered: u64,
    total_generated: u64,
}

impl<'a> VcSimulation<'a> {
    /// Builds a simulation; lanes are provisioned per
    /// [`VcRoutingAlgorithm::provisioning`].
    pub fn new(
        topo: &'a dyn Topology,
        algo: &'a dyn VcRoutingAlgorithm,
        pattern: &'a dyn TrafficPattern,
        config: SimConfig,
    ) -> Self {
        let table = VcTable::new(topo, &algo.provisioning(topo));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let source = TrafficSource::for_config(topo.num_nodes(), &config, &mut rng);
        VcSimulation {
            topo,
            algo,
            pattern,
            config,
            rng,
            source,
            cycle: 0,
            packets: Vec::new(),
            queues: vec![VecDeque::new(); topo.num_nodes()],
            injecting: vec![None; topo.num_nodes()],
            ejecting: vec![None; topo.num_nodes()],
            vc_owner: vec![None; table.num_virtual_channels()],
            in_flight: Vec::new(),
            last_progress: 0,
            generation_enabled: true,
            metrics: MetricsCollector::default(),
            total_delivered: 0,
            total_generated: 0,
            table,
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The lane table in use.
    pub fn table(&self) -> &VcTable {
        &self.table
    }

    /// All packets created so far.
    pub fn packets(&self) -> &[VcPacket] {
        &self.packets
    }

    /// The packet occupying a lane, if any.
    pub fn vc_owner(&self, vc: VirtualChannelId) -> Option<VcPacketId> {
        self.vc_owner[vc.index()]
    }

    /// Enqueues a hand-crafted message.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or `length == 0`.
    pub fn inject_message(&mut self, src: NodeId, dst: NodeId, length: u32) -> VcPacketId {
        assert_ne!(src, dst, "self-addressed packets are consumed locally");
        assert!(length > 0, "packets have at least one flit");
        let id = VcPacketId(self.packets.len() as u64);
        self.packets.push(VcPacket {
            id,
            src,
            dst,
            length,
            created_at: self.cycle,
            injected_at: None,
            delivered_at: None,
            worm: Vec::new(),
            flits_at_source: length,
            flits_consumed: 0,
            head_node: src,
            arrived: None,
            head_arrival: self.cycle,
            hops: 0,
        });
        self.queues[src.index()].push_back(id);
        self.total_generated += 1;
        if self.in_window() {
            self.metrics.messages_generated += 1;
            self.metrics.flits_generated += length as u64;
        }
        id
    }

    fn in_window(&self) -> bool {
        self.cycle >= self.metrics.window_start && self.cycle < self.metrics.window_end
    }

    fn generate(&mut self) {
        if !self.generation_enabled {
            return;
        }
        let mut new_messages: Vec<(NodeId, u32)> = Vec::new();
        for node in 0..self.topo.num_nodes() {
            let (source, rng) = (&mut self.source, &mut self.rng);
            let mut lengths = Vec::new();
            source.poll(node, self.cycle, rng, |len| lengths.push(len));
            for len in lengths {
                new_messages.push((NodeId::new(node), len));
            }
        }
        for (src, len) in new_messages {
            if let Some(dst) = self.pattern.dest(self.topo, src, &mut self.rng) {
                self.inject_message(src, dst, len);
            }
        }
    }

    /// Free permitted lanes for a header, in lane-priority order.
    fn candidates(&self, id: VcPacketId) -> Vec<VirtualChannelId> {
        let p = &self.packets[id.0 as usize];
        self.algo
            .route_vc(self.topo, &self.table, p.head_node, p.dst, p.arrived)
            .iter()
            .filter_map(|v| self.table.vc_from(self.topo, p.head_node, v))
            .filter(|vc| self.vc_owner[vc.index()].is_none())
            .collect()
    }

    /// One simulation cycle. Returns a report if the watchdog fired.
    pub fn step(&mut self) -> Option<DeadlockReport> {
        self.generate();

        // Arbitration: FCFS priority, grant free lanes.
        let mut requesters: Vec<VcPacketId> = Vec::new();
        for &id in &self.in_flight {
            let p = &self.packets[id.0 as usize];
            if p.head_node != p.dst {
                requesters.push(id);
            }
        }
        for node in 0..self.topo.num_nodes() {
            if self.injecting[node].is_none() {
                if let Some(&head) = self.queues[node].front() {
                    requesters.push(head);
                }
            }
        }
        requesters.sort_by_key(|&id| (self.packets[id.0 as usize].head_arrival, id.0));

        let mut grants: Vec<(VcPacketId, VirtualChannelId)> = Vec::new();
        let mut granted = vec![false; self.table.num_virtual_channels()];
        for id in requesters {
            if let Some(&vc) = self.candidates(id).iter().find(|vc| !granted[vc.index()]) {
                granted[vc.index()] = true;
                grants.push((id, vc));
            }
        }

        // Advance: consuming packets and granted packets compete for
        // physical link bandwidth (one flit per link per cycle), FCFS.
        let mut link_used = vec![false; self.topo.num_channels()];
        let mut progressed = false;

        let mut movers: Vec<(VcPacketId, Option<VirtualChannelId>)> = Vec::new();
        for &id in &self.in_flight {
            let p = &self.packets[id.0 as usize];
            if p.head_node == p.dst {
                movers.push((id, None));
            }
        }
        for &(id, vc) in &grants {
            movers.push((id, Some(vc)));
        }
        movers.sort_by_key(|&(id, _)| (self.packets[id.0 as usize].head_arrival, id.0));

        for (id, new_vc) in movers {
            if self.try_move(id, new_vc, &mut link_used) {
                progressed = true;
            }
        }

        if self.in_window() && self.cycle.is_multiple_of(256) {
            let queued = self.queues.iter().map(VecDeque::len).sum();
            self.metrics.queue_samples.push(queued);
        }
        if progressed || self.in_flight.is_empty() {
            self.last_progress = self.cycle;
        }
        self.cycle += 1;
        if !self.in_flight.is_empty()
            && self.cycle - self.last_progress >= self.config.deadlock_threshold
        {
            return Some(DeadlockReport {
                cycle: Vec::new(),
                stranded: Vec::new(),
                detected_at: self.cycle,
                blocked_packets: self.in_flight.len(),
            });
        }
        None
    }

    /// Attempts to move a worm one step (into `new_vc`, or consuming at
    /// the destination when `None`). Fails without side effects if any
    /// needed link's bandwidth is already spent this cycle.
    fn try_move(
        &mut self,
        id: VcPacketId,
        new_vc: Option<VirtualChannelId>,
        link_used: &mut [bool],
    ) -> bool {
        // Links that receive a flit: the new head lane (if any), every
        // occupied lane except the tail, and the tail lane too when a
        // fresh flit enters from the source.
        let p = &self.packets[id.0 as usize];
        let refill = p.flits_at_source > 0;
        let mut needed: Vec<usize> = Vec::with_capacity(p.worm.len() + 1);
        if let Some(vc) = new_vc {
            needed.push(self.table.decompose(vc).0.index());
        } else {
            // Consuming: the single ejection channel must be ours.
            let node = p.dst.index();
            match self.ejecting[node] {
                None => {}
                Some(holder) if holder == id => {}
                Some(_) => return false,
            }
        }
        let skip_tail = usize::from(!refill);
        for &vc in p.worm.iter().skip(skip_tail) {
            // When the tail is refilled, its link carries the fresh
            // flit; links of every later lane carry the shifting flits.
            needed.push(self.table.decompose(vc).0.index());
        }
        // The tail link is only crossed by the refill flit; without a
        // refill the tail flit *leaves* its lane and crosses the next
        // one, which the loop above already covers.
        if needed.iter().any(|&l| link_used[l]) {
            return false;
        }
        for &l in &needed {
            link_used[l] = true;
        }

        // Perform the move.
        match new_vc {
            Some(vc) => self.take_lane(id, vc),
            None => self.consume_one_flit(id),
        }
        true
    }

    fn take_lane(&mut self, id: VcPacketId, vc: VirtualChannelId) {
        let (ch, _) = self.table.decompose(vc);
        let channel = self.topo.channel(ch);
        let first_hop = self.packets[id.0 as usize].injected_at.is_none();
        if first_hop {
            let node = channel.src.index();
            let front = self.queues[node].pop_front();
            debug_assert_eq!(front, Some(id));
            self.injecting[node] = Some(id);
            self.packets[id.0 as usize].injected_at = Some(self.cycle);
            self.in_flight.push(id);
        }
        self.vc_owner[vc.index()] = Some(id);
        let cycle = self.cycle;
        let vdir = self.table.vdir_of(self.topo, vc);
        let p = &mut self.packets[id.0 as usize];
        p.worm.push(vc);
        p.head_node = channel.dst;
        p.arrived = Some(vdir);
        p.head_arrival = cycle + 1;
        p.hops += 1;
        self.shift_tail(id);
    }

    fn consume_one_flit(&mut self, id: VcPacketId) {
        let node = self.packets[id.0 as usize].dst.index();
        if self.ejecting[node].is_none() {
            self.ejecting[node] = Some(id);
        }
        if self.in_window() {
            self.metrics.flits_delivered += 1;
        }
        let p = &mut self.packets[id.0 as usize];
        p.flits_consumed += 1;
        let done = p.flits_consumed == p.length;
        self.shift_tail(id);
        if done {
            let p = &mut self.packets[id.0 as usize];
            debug_assert!(p.worm.is_empty());
            p.delivered_at = Some(self.cycle);
            if self.ejecting[node] == Some(id) {
                self.ejecting[node] = None;
            }
            self.total_delivered += 1;
            self.in_flight.retain(|&q| q != id);
            let p = &self.packets[id.0 as usize];
            if p.created_at >= self.metrics.window_start && p.created_at < self.metrics.window_end {
                self.metrics.latencies.record(self.cycle - p.created_at);
                self.metrics
                    .network_latencies
                    .record(self.cycle - p.injected_at.expect("delivered => injected"));
                self.metrics.hop_counts.push(p.hops);
            }
        }
    }

    fn shift_tail(&mut self, id: VcPacketId) {
        let idx = id.0 as usize;
        if self.packets[idx].flits_at_source > 0 {
            self.packets[idx].flits_at_source -= 1;
            if self.packets[idx].flits_at_source == 0 {
                let src = self.packets[idx].src.index();
                if self.injecting[src] == Some(id) {
                    self.injecting[src] = None;
                }
            }
        } else if !self.packets[idx].worm.is_empty() {
            let tail = self.packets[idx].worm.remove(0);
            self.vc_owner[tail.index()] = None;
        }
    }

    /// Runs warmup, measurement and drain; mirrors
    /// [`Simulation::run`](turnroute_sim::Simulation::run).
    pub fn run(&mut self) -> SimReport {
        self.metrics.window_start = self.config.warmup_cycles;
        self.metrics.window_end = self.config.warmup_cycles + self.config.measure_cycles;
        let drain_limit = self.metrics.window_end + self.config.measure_cycles;
        let mut outcome = RunOutcome::Completed;
        while self.cycle < drain_limit {
            if self.cycle == self.metrics.window_end {
                self.generation_enabled = false;
            }
            if let Some(report) = self.step() {
                outcome = RunOutcome::Deadlocked(report);
                break;
            }
            if self.cycle > self.metrics.window_end
                && self.in_flight.is_empty()
                && self.queues.iter().all(VecDeque::is_empty)
            {
                break;
            }
        }
        SimReport {
            offered_load: self.config.injection_rate_flits,
            metrics: self.metrics.clone(),
            outcome,
            stranded_packets: 0,
            total_delivered: self.total_delivered,
            total_generated: self.total_generated,
        }
    }
}

/// A [`turnroute_sim::exec::SeriesJob`] running the virtual-channel
/// engine, so VC sweeps schedule through the same parallel executor as
/// plain ones.
pub fn vc_series_job<'a>(
    topo: &'a dyn Topology,
    algorithm: &'a dyn VcRoutingAlgorithm,
    pattern: &'a dyn TrafficPattern,
    base: &SimConfig,
    offered_loads: &[f64],
) -> turnroute_sim::SeriesJob<'a> {
    let config = base.clone();
    let cache_key = turnroute_sim::exec::sim_cache_key(
        format!("vc:{}", topo.label()),
        &algorithm.name(),
        &pattern.name(),
        base,
    );
    turnroute_sim::SeriesJob::new(
        algorithm.name(),
        pattern.name(),
        cache_key,
        base.seed,
        offered_loads,
        move |load, seed| {
            let cfg = config.clone().injection_rate(load).seed(seed);
            let report = VcSimulation::new(topo, algorithm, pattern, cfg).run();
            turnroute_sim::CellOutput::from_report(&report)
        },
    )
}

/// Sweeps `algorithm` over the offered loads, mirroring
/// [`turnroute_sim::sweep`] for the virtual-channel engine so that
/// lane-based and channel-free algorithms can share one figure.
pub fn sweep_vc(
    topo: &dyn Topology,
    algorithm: &dyn VcRoutingAlgorithm,
    pattern: &dyn TrafficPattern,
    base: &SimConfig,
    offered_loads: &[f64],
) -> turnroute_sim::SweepSeries {
    let job = vc_series_job(topo, algorithm, pattern, base, offered_loads);
    turnroute_sim::Executor::new(1).run(vec![job]).remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mady::MadY;
    use crate::routing::SingleClass;
    use turnroute_core::{DimensionOrder, NegativeFirst};
    use turnroute_sim::patterns::{Transpose, Uniform};
    use turnroute_sim::Simulation;
    use turnroute_topology::Mesh;

    fn quiet() -> SimConfig {
        SimConfig::paper()
            .warmup_cycles(0)
            .measure_cycles(5_000)
            .deadlock_threshold(2_000)
    }

    #[test]
    fn single_packet_latency_matches_the_plain_engine() {
        let mesh = Mesh::new_2d(8, 8);
        let plain = DimensionOrder::new();
        let mut base = Simulation::new(&mesh, &plain, &Uniform, quiet());
        let src = mesh.node_at(&[0, 0].into());
        let dst = mesh.node_at(&[4, 0].into());
        let base_id = base.inject_message(src, dst, 10);
        for _ in 0..100 {
            base.step();
        }

        let vc_algo = SingleClass::new(DimensionOrder::new());
        let mut vcsim = VcSimulation::new(&mesh, &vc_algo, &Uniform, quiet());
        let vc_id = vcsim.inject_message(src, dst, 10);
        for _ in 0..100 {
            vcsim.step();
        }
        assert_eq!(
            base.packet(base_id).latency_cycles().unwrap(),
            vcsim.packets()[vc_id.index() as usize]
                .delivered_at
                .unwrap(),
        );
    }

    #[test]
    fn flit_conservation_holds() {
        let mesh = Mesh::new_2d(4, 4);
        let mady = MadY::new();
        let config = quiet().injection_rate(0.15).measure_cycles(0);
        let mut sim = VcSimulation::new(&mesh, &mady, &Uniform, config);
        for _ in 0..2_000 {
            sim.step();
            for p in sim.packets() {
                let (a, b, c) = p.flit_counts();
                assert_eq!(a + b + c, p.length);
            }
            // Ownership is consistent.
            for p in sim.packets() {
                for &vc in p.worm() {
                    assert_eq!(sim.vc_owner(vc), Some(p.id));
                }
            }
        }
    }

    #[test]
    fn physical_bandwidth_is_respected() {
        // Two worms sharing a link via different lanes must interleave:
        // together they cannot exceed one flit per cycle on the link.
        let mesh = Mesh::new_2d(8, 2);
        let mady = MadY::new();
        let mut sim = VcSimulation::new(&mesh, &mady, &Uniform, quiet());
        // Same physical column link wanted by two packets going north.
        let a = sim.inject_message(
            mesh.node_at(&[0, 0].into()),
            mesh.node_at(&[4, 1].into()),
            40,
        );
        let b = sim.inject_message(
            mesh.node_at(&[0, 1].into()),
            mesh.node_at(&[5, 1].into()),
            40,
        );
        for _ in 0..600 {
            sim.step();
        }
        assert!(sim.packets()[a.index() as usize].delivered_at.is_some());
        assert!(sim.packets()[b.index() as usize].delivered_at.is_some());
    }

    #[test]
    fn mady_never_deadlocks_under_stress() {
        let mesh = Mesh::new_2d(5, 5);
        let mady = MadY::new();
        let config = SimConfig::paper()
            .injection_rate(0.8)
            .warmup_cycles(0)
            .measure_cycles(10_000)
            .deadlock_threshold(1_500)
            .seed(13);
        let mut sim = VcSimulation::new(&mesh, &mady, &Uniform, config);
        for _ in 0..12_000 {
            assert!(sim.step().is_none(), "mad-y must not deadlock");
        }
        assert!(sim.packets().iter().any(|p| p.delivered_at.is_some()));
    }

    #[test]
    fn mady_outperforms_partially_adaptive_on_transpose() {
        // The payoff of full adaptivity: on transpose, mad-y at least
        // matches negative-first (the best channel-free algorithm) at a
        // load past xy's saturation.
        let mesh = Mesh::new_2d(8, 8);
        let config = SimConfig::paper()
            .injection_rate(0.12)
            .warmup_cycles(2_000)
            .measure_cycles(10_000)
            .seed(31);
        let mady = MadY::new();
        let mady_report = VcSimulation::new(&mesh, &mady, &Transpose, config.clone()).run();
        let nf = SingleClass::new(NegativeFirst::minimal());
        let nf_report = VcSimulation::new(&mesh, &nf, &Transpose, config).run();
        let (m, n) = (
            mady_report.metrics.throughput_flits_per_usec(),
            nf_report.metrics.throughput_flits_per_usec(),
        );
        assert!(m >= n * 0.95, "mad-y {m:.1} vs negative-first {n:.1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mesh = Mesh::new_2d(4, 4);
        let mady = MadY::new();
        let config = quiet().injection_rate(0.05).seed(5);
        let r1 = VcSimulation::new(&mesh, &mady, &Uniform, config.clone()).run();
        let r2 = VcSimulation::new(&mesh, &mady, &Uniform, config).run();
        assert_eq!(r1.total_delivered, r2.total_delivered);
        assert_eq!(r1.metrics.latencies, r2.metrics.latencies);
    }
}
