//! Routing over virtual channels.

use crate::table::VcTable;
use crate::vdir::{VDirSet, VirtualDirection};
use turnroute_core::RoutingAlgorithm;
use turnroute_topology::{NodeId, Topology};

/// A routing algorithm over virtual channels: like
/// [`RoutingAlgorithm`], but the answer names virtual directions
/// (physical direction + lane class).
pub trait VcRoutingAlgorithm: Send + Sync {
    /// A short name for tables and plots.
    fn name(&self) -> String;

    /// The lane provisioning this algorithm needs on `topo`.
    fn provisioning(&self, topo: &dyn Topology) -> Vec<u8>;

    /// The virtual directions the header may take next. Must be empty
    /// iff `current == dest`, and only contain provisioned lanes of
    /// existing channels.
    fn route_vc(
        &self,
        topo: &dyn Topology,
        table: &VcTable,
        current: NodeId,
        dest: NodeId,
        arrived: Option<VirtualDirection>,
    ) -> VDirSet;

    /// `true` if the algorithm only uses shortest physical paths.
    fn is_minimal(&self) -> bool;
}

/// Runs a plain [`RoutingAlgorithm`] on class-0 lanes only: the bridge
/// that lets single-channel algorithms run in the virtual-channel
/// simulator for apples-to-apples comparisons.
#[derive(Debug, Clone)]
pub struct SingleClass<A> {
    base: A,
}

impl<A: RoutingAlgorithm> SingleClass<A> {
    /// Wraps `base`.
    pub fn new(base: A) -> Self {
        SingleClass { base }
    }
}

impl<A: RoutingAlgorithm> VcRoutingAlgorithm for SingleClass<A> {
    fn name(&self) -> String {
        self.base.name()
    }

    fn provisioning(&self, topo: &dyn Topology) -> Vec<u8> {
        vec![1; topo.num_dims()]
    }

    fn route_vc(
        &self,
        topo: &dyn Topology,
        _table: &VcTable,
        current: NodeId,
        dest: NodeId,
        arrived: Option<VirtualDirection>,
    ) -> VDirSet {
        self.base
            .route(topo, current, dest, arrived.map(VirtualDirection::dir))
            .iter()
            .map(|d| VirtualDirection::new(d, 0))
            .collect()
    }

    fn is_minimal(&self) -> bool {
        self.base.is_minimal()
    }
}

/// Follows `algorithm` from `source` to `dest`, taking the first
/// permitted virtual direction at each hop, and returns the node path.
///
/// # Panics
///
/// Panics if the algorithm violates its contract (empty set away from
/// the destination, unprovisioned lane, or failure to terminate).
pub fn walk_vc(
    algorithm: &dyn VcRoutingAlgorithm,
    topo: &dyn Topology,
    table: &VcTable,
    source: NodeId,
    dest: NodeId,
) -> Vec<NodeId> {
    let mut path = vec![source];
    let mut current = source;
    let mut arrived = None;
    let hop_limit = 4 * (topo.num_nodes() + 1);
    while current != dest {
        assert!(
            path.len() <= hop_limit,
            "walk exceeded hop limit: livelock?"
        );
        let vdirs = algorithm.route_vc(topo, table, current, dest, arrived);
        let v = vdirs
            .iter()
            .next()
            .expect("vc routing algorithm returned no direction away from dest");
        assert!(
            table.vc_from(topo, current, v).is_some(),
            "vc routing algorithm returned an unprovisioned lane"
        );
        current = topo
            .neighbor(current, v.dir())
            .expect("lane implies channel");
        arrived = Some(v);
        path.push(current);
    }
    path
}

/// Exhaustively checks the [`VcRoutingAlgorithm`] contract over every
/// source/destination pair, mirroring
/// [`check_routing_contract`](turnroute_core::check_routing_contract).
///
/// Returns the number of pairs checked.
///
/// # Panics
///
/// Panics on the first violation.
pub fn check_vc_routing_contract(
    algorithm: &dyn VcRoutingAlgorithm,
    topo: &dyn Topology,
    table: &VcTable,
) -> usize {
    let mut pairs = 0;
    for source in topo.nodes() {
        for dest in topo.nodes() {
            if source == dest {
                continue;
            }
            pairs += 1;
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![(source, None::<VirtualDirection>)];
            while let Some((node, arrived)) = stack.pop() {
                if node == dest || !seen.insert((node, arrived)) {
                    continue;
                }
                let vdirs = algorithm.route_vc(topo, table, node, dest, arrived);
                assert!(
                    !vdirs.is_empty(),
                    "{} offers nothing at {} toward {} (arrived {:?})",
                    algorithm.name(),
                    node,
                    dest,
                    arrived
                );
                for v in vdirs.iter() {
                    assert!(
                        table.vc_from(topo, node, v).is_some(),
                        "{} offers unprovisioned {} at {}",
                        algorithm.name(),
                        v,
                        node
                    );
                    let next = topo.neighbor(node, v.dir()).expect("lane implies channel");
                    if algorithm.is_minimal() {
                        assert!(
                            topo.distance(next, dest) < topo.distance(node, dest),
                            "{} offers unproductive {} at {} toward {}",
                            algorithm.name(),
                            v,
                            node,
                            dest
                        );
                    }
                    stack.push((next, Some(v)));
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_core::{DimensionOrder, WestFirst};
    use turnroute_topology::Mesh;

    #[test]
    fn single_class_mirrors_the_base_algorithm() {
        let mesh = Mesh::new_2d(5, 5);
        let base = WestFirst::minimal();
        let vc = SingleClass::new(WestFirst::minimal());
        let table = VcTable::new(&mesh, &vc.provisioning(&mesh));
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                let vdirs = vc.route_vc(&mesh, &table, s, d, None);
                let dirs = base.route(&mesh, s, d, None);
                assert_eq!(vdirs.physical(), dirs);
                assert!(vdirs.iter().all(|v| v.class() == 0));
            }
        }
    }

    #[test]
    fn single_class_contract_holds() {
        let mesh = Mesh::new_2d(4, 4);
        let vc = SingleClass::new(DimensionOrder::new());
        let table = VcTable::new(&mesh, &vc.provisioning(&mesh));
        check_vc_routing_contract(&vc, &mesh, &table);
    }

    #[test]
    fn walk_vc_is_minimal_for_minimal_algorithms() {
        let mesh = Mesh::new_2d(6, 6);
        let vc = SingleClass::new(WestFirst::minimal());
        let table = VcTable::new(&mesh, &vc.provisioning(&mesh));
        let s = mesh.node_at(&[5, 1].into());
        let d = mesh.node_at(&[0, 4].into());
        let path = walk_vc(&vc, &mesh, &table, s, d);
        assert_eq!(path.len() - 1, mesh.distance(s, d));
    }
}
