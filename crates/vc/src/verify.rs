//! Deadlock and adaptivity verification over virtual channels.

use crate::routing::VcRoutingAlgorithm;
use crate::table::VcTable;
use crate::vdir::VirtualDirection;
use std::collections::HashMap;
use turnroute_core::ChannelDependencyGraph;
use turnroute_topology::{Channel, ChannelId, NodeId, Topology};

/// Builds the dependency graph over *virtual* channels from a
/// lane-transition relation: `may_follow((channel, class),
/// (channel', class'))` decides whether a packet holding the first lane
/// may request the second (for physically adjacent channels).
///
/// The graph reuses [`ChannelDependencyGraph`], with
/// [`VirtualChannelId`](crate::VirtualChannelId) indices standing in
/// for channel ids — acyclicity means deadlock freedom exactly as for
/// physical channels.
///
/// # Example
///
/// ```
/// use turnroute_vc::{mady_may_follow, vc_dependency_graph, VcTable};
/// use turnroute_topology::{Mesh, Topology};
///
/// let mesh = Mesh::new_2d(4, 4);
/// let table = VcTable::new(&mesh, &[1, 2]);
/// let cdg = vc_dependency_graph(&mesh, &table, |_, from, to| {
///     mady_may_follow(from.1, to.1)
/// });
/// assert!(cdg.is_acyclic()); // mad-y is deadlock free
/// # // where from/to pair each lane with its virtual direction
/// ```
pub fn vc_dependency_graph(
    topo: &dyn Topology,
    table: &VcTable,
    may_follow: impl Fn(&dyn Topology, (Channel, VirtualDirection), (Channel, VirtualDirection)) -> bool,
) -> ChannelDependencyGraph {
    let n = table.num_virtual_channels();
    let mut succ: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
    // Group lanes by source router.
    let mut leaving: Vec<Vec<(ChannelId, u8)>> = vec![Vec::new(); topo.num_nodes()];
    for (ch, class) in table.iter(topo) {
        leaving[topo.channel(ch).src.index()].push((ch, class));
    }
    for (c1, k1) in table.iter(topo) {
        let ch1 = topo.channel(c1);
        let v1 = VirtualDirection::new(ch1.dir, k1);
        let from_vc = table.vc(topo, c1, k1);
        for &(c2, k2) in &leaving[ch1.dst.index()] {
            let ch2 = topo.channel(c2);
            let v2 = VirtualDirection::new(ch2.dir, k2);
            if may_follow(topo, (ch1, v1), (ch2, v2)) {
                succ[from_vc.index()].push(ChannelId::new(table.vc(topo, c2, k2).index()));
            }
        }
    }
    ChannelDependencyGraph::from_successors(succ)
}

/// Counts the distinct *physical* paths a VC routing algorithm allows
/// from `src` to `dst` — the oracle behind full-adaptivity claims.
///
/// States are `(node, arrival lane)`; two paths are distinct iff their
/// node sequences differ (lane choices that produce the same node path
/// are deliberately collapsed, since `S_algorithm` counts paths, not
/// lane assignments).
///
/// # Panics
///
/// Panics if the relation admits unboundedly many paths.
pub fn count_physical_paths(
    algorithm: &dyn VcRoutingAlgorithm,
    topo: &dyn Topology,
    table: &VcTable,
    src: NodeId,
    dst: NodeId,
) -> u128 {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        OnStack,
        Done(u128),
    }
    type State = (NodeId, Option<VirtualDirection>);

    fn visit(
        algorithm: &dyn VcRoutingAlgorithm,
        topo: &dyn Topology,
        table: &VcTable,
        dst: NodeId,
        state: State,
        memo: &mut HashMap<State, Mark>,
    ) -> u128 {
        let (node, arrived) = state;
        if node == dst {
            return 1;
        }
        match memo.get(&state) {
            Some(Mark::Done(count)) => return *count,
            Some(Mark::OnStack) => panic!("unboundedly many paths"),
            None => {}
        }
        memo.insert(state, Mark::OnStack);
        // Collapse lanes of the same physical direction: the path is
        // defined by the node sequence.
        let vdirs = algorithm.route_vc(topo, table, node, dst, arrived);
        let mut total = 0u128;
        for dir in vdirs.physical() {
            // Continue with the lowest permitted lane of this physical
            // direction (any lane yields the same continuations for the
            // algorithms here; taking one avoids double counting).
            let v = vdirs
                .iter()
                .find(|v| v.dir() == dir)
                .expect("physical() implies a member");
            let next = topo.neighbor(node, dir).expect("lane implies channel");
            total += visit(algorithm, topo, table, dst, (next, Some(v)), memo);
        }
        memo.insert(state, Mark::Done(total));
        total
    }

    let mut memo = HashMap::new();
    visit(algorithm, topo, table, dst, (src, None), &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dateline::{dateline_may_follow, DatelineDimensionOrder};
    use crate::mady::{mady_may_follow, MadY};
    use crate::routing::SingleClass;
    use turnroute_core::adaptiveness::fully_adaptive_shortest_paths;
    use turnroute_core::{TurnSet, WestFirst};
    use turnroute_topology::{Mesh, Torus};

    #[test]
    fn mady_dependency_graph_is_acyclic() {
        for (m, n) in [(4, 4), (6, 3), (3, 6), (8, 8)] {
            let mesh = Mesh::new_2d(m, n);
            let table = VcTable::new(&mesh, &[1, 2]);
            let cdg =
                vc_dependency_graph(&mesh, &table, |_, from, to| mady_may_follow(from.1, to.1));
            assert!(cdg.is_acyclic(), "{m}x{n}");
        }
    }

    #[test]
    fn mady_is_fully_adaptive() {
        // The headline of reference [18]: with one extra y channel,
        // every shortest path is allowed — S = S_f for every pair.
        let mesh = Mesh::new_2d(6, 6);
        let mady = MadY::new();
        let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                if s == d {
                    continue;
                }
                assert_eq!(
                    count_physical_paths(&mady, &mesh, &table, s, d),
                    fully_adaptive_shortest_paths(&mesh, s, d),
                    "{s}->{d}"
                );
            }
        }
    }

    #[test]
    fn single_class_counts_match_the_base_algorithm() {
        let mesh = Mesh::new_2d(5, 5);
        let wf = SingleClass::new(WestFirst::minimal());
        let table = VcTable::new(&mesh, &wf.provisioning(&mesh));
        let base = WestFirst::minimal();
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                if s != d {
                    assert_eq!(
                        count_physical_paths(&wf, &mesh, &table, s, d),
                        turnroute_core::count_paths(&base, &mesh, s, d)
                    );
                }
            }
        }
    }

    #[test]
    fn dateline_dependency_graph_is_acyclic() {
        for (k, n) in [(4, 2), (5, 2), (8, 1), (3, 3)] {
            let torus = Torus::new(k, n);
            let table = VcTable::new(&torus, &vec![2; n]);
            let cdg = vc_dependency_graph(&torus, &table, |t, from, to| {
                dateline_may_follow(t, (from.0, from.1.class()), (to.0, to.1.class()))
            });
            assert!(cdg.is_acyclic(), "{k}-ary {n}-cube");
        }
    }

    #[test]
    fn single_lane_torus_dimension_order_is_cyclic() {
        // The contrast: without the dateline lane, the rings alone form
        // dependency cycles (the paper's Section 4.2 point).
        let torus = Torus::new(4, 2);
        let cdg = turnroute_core::ChannelDependencyGraph::from_turn_set(
            &torus,
            &TurnSet::dimension_order(2),
        );
        assert!(!cdg.is_acyclic());
    }

    #[test]
    fn dateline_contract_and_minimality() {
        let torus = Torus::new(5, 2);
        let algo = DatelineDimensionOrder::new();
        let table = VcTable::new(&torus, &algo.provisioning(&torus));
        // Exactly one physical path per pair except ties.
        for s in torus.nodes().take(5) {
            for d in torus.nodes() {
                if s == d {
                    continue;
                }
                let paths = count_physical_paths(&algo, &torus, &table, s, d);
                assert!(paths >= 1);
            }
        }
    }
}
