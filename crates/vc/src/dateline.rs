//! Dateline dimension-order routing for k-ary n-cubes: the classic
//! Dally–Seitz use of virtual channels, included as the
//! extra-channel counterpoint to Section 4.2 — with one extra lane per
//! dimension, *minimal* deadlock-free torus routing exists, which the
//! paper shows is impossible without extra channels for `k > 4`.

use crate::routing::VcRoutingAlgorithm;
use crate::table::VcTable;
use crate::vdir::{VDirSet, VirtualDirection};
use turnroute_topology::{NodeId, Topology};

/// Dimension-order torus routing with a dateline: each ring is provided
/// two lanes; a packet travels a dimension on lane 0 until it crosses
/// the wraparound channel, and on lane 1 from that hop onward. Cutting
/// every ring's cycle at the dateline makes the lane dependency graph
/// acyclic even though the rings need no turns to cycle.
///
/// Minimal: each dimension is resolved the short way around (both ways
/// offered when the distance ties).
///
/// # Example
///
/// ```
/// use turnroute_vc::{DatelineDimensionOrder, VcRoutingAlgorithm, VcTable, walk_vc};
/// use turnroute_topology::{NodeId, Topology, Torus};
///
/// let torus = Torus::new(8, 2);
/// let algo = DatelineDimensionOrder::new();
/// let table = VcTable::new(&torus, &algo.provisioning(&torus));
/// let path = walk_vc(&algo, &torus, &table, NodeId::new(0), NodeId::new(60));
/// // Minimal with wraparound: something no channel-free torus algorithm
/// // in the paper can guarantee.
/// assert_eq!(path.len() - 1, torus.distance(NodeId::new(0), NodeId::new(60)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DatelineDimensionOrder {
    _private: (),
}

impl DatelineDimensionOrder {
    /// Creates the dateline router.
    pub fn new() -> Self {
        DatelineDimensionOrder { _private: () }
    }
}

impl VcRoutingAlgorithm for DatelineDimensionOrder {
    fn name(&self) -> String {
        "dateline-dimension-order".to_owned()
    }

    fn provisioning(&self, topo: &dyn Topology) -> Vec<u8> {
        assert!(
            (0..topo.num_dims()).all(|d| topo.wraps(d)),
            "dateline routing targets tori"
        );
        vec![2; topo.num_dims()]
    }

    fn route_vc(
        &self,
        topo: &dyn Topology,
        _table: &VcTable,
        current: NodeId,
        dest: NodeId,
        arrived: Option<VirtualDirection>,
    ) -> VDirSet {
        let mut set = VDirSet::new();
        // Lowest unresolved dimension first.
        let productive = topo.minimal_directions(current, dest);
        let Some(first) = productive.first() else {
            return set;
        };
        let dim = first.dim();
        for dir in productive.iter().filter(|d| d.dim() == dim) {
            // Lane 1 from the wraparound hop onward within a dimension.
            let wrapped_already = matches!(
                arrived,
                Some(v) if v.dir().dim() == dim && v.class() == 1
            );
            let this_hop_wraps = topo
                .channel_from(current, dir)
                .is_some_and(|c| topo.channel(c).wraparound);
            let class = u8::from(wrapped_already || this_hop_wraps);
            set.insert(VirtualDirection::new(dir, class));
        }
        set
    }

    fn is_minimal(&self) -> bool {
        true
    }
}

/// The lane-transition relation of dateline routing, for dependency
/// verification: `(channel, class) -> (channel', class')` transitions
/// the discipline can produce.
pub fn dateline_may_follow(
    topo: &dyn Topology,
    from: (turnroute_topology::Channel, u8),
    to: (turnroute_topology::Channel, u8),
) -> bool {
    let _ = topo;
    let ((c1, k1), (c2, k2)) = (from, to);
    let (d1, d2) = (c1.dir.dim(), c2.dir.dim());
    // No reversals within a dimension.
    if d1 == d2 && c1.dir.sign() != c2.dir.sign() {
        return false;
    }
    if d1 == d2 {
        // Continuing a dimension: the class is sticky, except the
        // wraparound hop which raises it to 1. A wrap channel is always
        // traversed on class 1 — and only reached from class 0, because
        // a minimal route never goes all the way around a ring: this is
        // the dateline cut that keeps each ring's dependency chain
        // acyclic.
        if c2.wraparound {
            k2 == 1 && k1 == 0 && !c1.wraparound
        } else if c1.wraparound || k1 == 1 {
            k2 == 1
        } else {
            k2 == 0
        }
    } else {
        // Dimension order: only ascending transitions; a new dimension
        // starts on class 0 unless its very first hop wraps.
        d1 < d2 && (k2 == u8::from(c2.wraparound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{check_vc_routing_contract, walk_vc};
    use turnroute_topology::Torus;

    #[test]
    fn contract_holds() {
        for (k, n) in [(5, 2), (4, 2), (6, 1)] {
            let torus = Torus::new(k, n);
            let algo = DatelineDimensionOrder::new();
            let table = VcTable::new(&torus, &algo.provisioning(&torus));
            check_vc_routing_contract(&algo, &torus, &table);
        }
    }

    #[test]
    fn every_pair_routes_minimally() {
        let torus = Torus::new(6, 2);
        let algo = DatelineDimensionOrder::new();
        let table = VcTable::new(&torus, &algo.provisioning(&torus));
        for s in torus.nodes() {
            for d in torus.nodes() {
                if s == d {
                    continue;
                }
                let path = walk_vc(&algo, &torus, &table, s, d);
                assert_eq!(path.len() - 1, torus.distance(s, d), "{s}->{d}");
            }
        }
    }

    #[test]
    fn lane_switches_exactly_at_the_wrap() {
        let torus = Torus::new(8, 1);
        let algo = DatelineDimensionOrder::new();
        let table = VcTable::new(&torus, &algo.provisioning(&torus));
        // 6 -> 1: short way is +3 through the wraparound 7 -> 0.
        let s = NodeId::new(6);
        let d = NodeId::new(1);
        let mut current = s;
        let mut arrived = None;
        let mut classes = Vec::new();
        while current != d {
            let v = algo
                .route_vc(&torus, &table, current, d, arrived)
                .iter()
                .next()
                .unwrap();
            classes.push(v.class());
            current = torus.neighbor(current, v.dir()).unwrap();
            arrived = Some(v);
        }
        // Hops: 6->7 (lane 0), 7->0 (wrap, lane 1), 0->1 (lane 1).
        assert_eq!(classes, vec![0, 1, 1]);
    }

    #[test]
    fn ties_offer_both_ways_around() {
        let torus = Torus::new(6, 1);
        let algo = DatelineDimensionOrder::new();
        let table = VcTable::new(&torus, &algo.provisioning(&torus));
        let set = algo.route_vc(&torus, &table, NodeId::new(0), NodeId::new(3), None);
        assert_eq!(set.physical().len(), 2);
    }
}
