//! Virtual channels and the turn model.
//!
//! The paper's step 1 already anticipates extra channels: "if each node
//! has v channels in a physical direction, treat these channels as being
//! in v distinct virtual directions". This crate follows that road — the
//! subject of the paper's companion reference \[18\] (Glass & Ni,
//! *"Maximally Fully Adaptive Routing in 2D Meshes"*) — and builds:
//!
//! * [`VirtualDirection`] / [`VDirSet`] / [`VcTable`] — lanes as
//!   first-class directions;
//! * [`MadY`] — **fully adaptive, deadlock-free minimal routing for 2D
//!   meshes** with one extra lane in the y dimension: every shortest
//!   path allowed (`S = S_f`), which Theorem 1 proves impossible without
//!   added channels;
//! * [`DatelineDimensionOrder`] — **minimal deadlock-free torus
//!   routing** with one extra lane per dimension, the counterpoint to
//!   Section 4.2's observation that channel-free torus algorithms must
//!   be nonminimal for `k > 4`;
//! * [`vc_dependency_graph`] — the Dally–Seitz check lifted to lanes;
//! * [`VcSimulation`] — the wormhole engine with per-link bandwidth
//!   multiplexed among lanes, plus [`SingleClass`] to run the paper's
//!   channel-free algorithms in the same engine for fair comparisons.
//!
//! # Example
//!
//! ```
//! use turnroute_vc::{count_physical_paths, MadY, VcRoutingAlgorithm, VcTable};
//! use turnroute_core::adaptiveness::fully_adaptive_shortest_paths;
//! use turnroute_topology::{Mesh, Topology};
//!
//! let mesh = Mesh::new_2d(8, 8);
//! let mady = MadY::new();
//! let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
//! let s = mesh.node_at(&[6, 1].into());
//! let d = mesh.node_at(&[2, 5].into());
//! // Fully adaptive: every shortest path is allowed.
//! assert_eq!(
//!     count_physical_paths(&mady, &mesh, &table, s, d),
//!     fully_adaptive_shortest_paths(&mesh, s, d),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dateline;
mod engine;
mod mady;
mod routing;
mod table;
mod vdir;
mod verify;

pub use dateline::{dateline_may_follow, DatelineDimensionOrder};
pub use engine::{sweep_vc, vc_series_job, VcPacket, VcPacketId, VcSimulation};
pub use mady::{mady_may_follow, MadY};
pub use routing::{check_vc_routing_contract, walk_vc, SingleClass, VcRoutingAlgorithm};
pub use table::{VcTable, VirtualChannelId};
pub use vdir::{VDirSet, VirtualDirection, MAX_CLASSES};
pub use verify::{count_physical_paths, vc_dependency_graph};
