//! Virtual directions: a physical direction split into buffered lanes.

use std::fmt;
use turnroute_topology::Direction;

/// The largest number of virtual-channel classes per physical direction.
///
/// Four classes keep a [`VDirSet`] within a `u128`
/// (`32 directions x 4 classes`); the paper's step 1 ("if each node has
/// v channels in a physical direction, treat these as v distinct virtual
/// directions") never needs more than two for the algorithms built here.
pub const MAX_CLASSES: u8 = 4;

/// A virtual direction: a physical [`Direction`] plus a class index
/// identifying which of its virtual channels is meant.
///
/// Step 1 of the turn model treats each class as a distinct direction;
/// transitions between classes of the *same* physical direction are the
/// 0-degree turns of step 2.
///
/// # Example
///
/// ```
/// use turnroute_vc::VirtualDirection;
/// use turnroute_topology::Direction;
///
/// let y1 = VirtualDirection::new(Direction::NORTH, 0);
/// let y2 = VirtualDirection::new(Direction::NORTH, 1);
/// assert_eq!(y1.dir(), y2.dir());
/// assert_ne!(y1, y2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualDirection {
    dir: Direction,
    class: u8,
}

impl VirtualDirection {
    /// Creates a virtual direction.
    ///
    /// # Panics
    ///
    /// Panics if `class >= MAX_CLASSES`.
    pub fn new(dir: Direction, class: u8) -> Self {
        assert!(
            class < MAX_CLASSES,
            "at most {MAX_CLASSES} classes per direction"
        );
        VirtualDirection { dir, class }
    }

    /// The physical direction.
    pub fn dir(self) -> Direction {
        self.dir
    }

    /// The class index within the physical direction.
    pub fn class(self) -> u8 {
        self.class
    }

    /// Dense index in `0..128`: `dir.index() * MAX_CLASSES + class`.
    pub fn index(self) -> usize {
        self.dir.index() * MAX_CLASSES as usize + self.class as usize
    }

    /// Inverse of [`VirtualDirection::index`].
    pub fn from_index(index: usize) -> Self {
        VirtualDirection::new(
            Direction::from_index(index / MAX_CLASSES as usize),
            (index % MAX_CLASSES as usize) as u8,
        )
    }
}

impl fmt::Display for VirtualDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.dir, self.class)
    }
}

/// A set of virtual directions, as a `u128` bitset over
/// [`VirtualDirection::index`]. Iteration order is by index: lowest
/// physical dimension first, then class — the "xy" output-selection
/// priority extended to virtual channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VDirSet(u128);

impl VDirSet {
    /// The empty set.
    pub fn new() -> Self {
        VDirSet(0)
    }

    /// Adds a virtual direction.
    pub fn insert(&mut self, v: VirtualDirection) {
        self.0 |= 1 << v.index();
    }

    /// Removes a virtual direction.
    pub fn remove(&mut self, v: VirtualDirection) {
        self.0 &= !(1 << v.index());
    }

    /// `true` if `v` is in the set.
    pub fn contains(self, v: VirtualDirection) -> bool {
        self.0 >> v.index() & 1 == 1
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates members in index order.
    pub fn iter(self) -> impl Iterator<Item = VirtualDirection> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let index = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(VirtualDirection::from_index(index))
            }
        })
    }

    /// The distinct physical directions present in the set.
    pub fn physical(self) -> turnroute_topology::DirSet {
        self.iter().map(VirtualDirection::dir).collect()
    }
}

impl FromIterator<VirtualDirection> for VDirSet {
    fn from_iter<I: IntoIterator<Item = VirtualDirection>>(iter: I) -> Self {
        let mut set = VDirSet::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for dir in Direction::all(16) {
            for class in 0..MAX_CLASSES {
                let v = VirtualDirection::new(dir, class);
                assert_eq!(VirtualDirection::from_index(v.index()), v);
            }
        }
    }

    #[test]
    #[should_panic(expected = "classes per direction")]
    fn class_bound_enforced() {
        let _ = VirtualDirection::new(Direction::EAST, MAX_CLASSES);
    }

    #[test]
    fn set_operations() {
        let mut set = VDirSet::new();
        let a = VirtualDirection::new(Direction::NORTH, 0);
        let b = VirtualDirection::new(Direction::NORTH, 1);
        set.insert(a);
        set.insert(b);
        set.insert(a);
        assert_eq!(set.len(), 2);
        assert!(set.contains(a) && set.contains(b));
        set.remove(a);
        assert!(!set.contains(a));
        assert_eq!(set.physical().len(), 1);
    }

    #[test]
    fn iteration_is_lowest_dimension_first() {
        let set: VDirSet = [
            VirtualDirection::new(Direction::NORTH, 1),
            VirtualDirection::new(Direction::WEST, 0),
            VirtualDirection::new(Direction::NORTH, 0),
        ]
        .into_iter()
        .collect();
        let order: Vec<VirtualDirection> = set.iter().collect();
        assert_eq!(order[0].dir(), Direction::WEST);
        assert_eq!(order[1], VirtualDirection::new(Direction::NORTH, 0));
        assert_eq!(order[2], VirtualDirection::new(Direction::NORTH, 1));
    }

    #[test]
    fn display_shows_dir_and_class() {
        let v = VirtualDirection::new(Direction::SOUTH, 1);
        assert_eq!(v.to_string(), "-d1.1");
    }
}
