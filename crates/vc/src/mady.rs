//! The maximally fully adaptive 2D-mesh algorithm with double y
//! channels — the paper's companion result (Glass & Ni, *"Maximally
//! Fully Adaptive Routing in 2D Meshes"*, reference \[18\]).

use crate::routing::VcRoutingAlgorithm;
use crate::table::VcTable;
use crate::vdir::{VDirSet, VirtualDirection};
use turnroute_topology::{Direction, NodeId, Topology};

/// Mad-y: fully adaptive, deadlock-free minimal routing for 2D meshes
/// using one extra virtual channel in the y dimension only.
///
/// Provisioning: one lane on x channels, two lanes (`y1` = class 0,
/// `y2` = class 1) on y channels. The turn-model discipline:
///
/// * while a **westward offset remains**, y hops use `y1`; the packet
///   may interleave west and `y1` hops freely;
/// * once no westward offset remains, y hops use `y2`, interleaving
///   freely with east hops.
///
/// Every physical shortest path is realizable (classes are an
/// implementation detail of the lanes, not of the path), so
/// `S = S_f`: the algorithm is *fully* adaptive — which Theorem 1 shows
/// is impossible without the extra channels. Deadlock freedom follows
/// from the acyclic virtual-channel dependency graph: `{W, y1}` has no
/// eastward channel to close a cycle, `{E, y2}` no westward one, and
/// the only cross edges (`W -> y2`, never back) are one-way.
///
/// # Example
///
/// ```
/// use turnroute_vc::{MadY, VcRoutingAlgorithm, VcTable};
/// use turnroute_topology::{Mesh, Topology};
///
/// let mesh = Mesh::new_2d(8, 8);
/// let mady = MadY::new();
/// let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
/// let s = mesh.node_at(&[4, 4].into());
/// let d = mesh.node_at(&[2, 6].into());
/// // West and north both on offer — fully adaptive even on the mixed
/// // quadrants where every single-channel turn-model algorithm is
/// // forced into a single path.
/// assert_eq!(mady.route_vc(&mesh, &table, s, d, None).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MadY {
    _private: (),
}

impl MadY {
    /// Creates the mad-y router.
    pub fn new() -> Self {
        MadY { _private: () }
    }

    /// The y-lane class to use: `y1` while a westward offset remains.
    fn y_class(topo: &dyn Topology, current: NodeId, dest: NodeId) -> u8 {
        let west_remains = topo.coord_of(dest).get(0) < topo.coord_of(current).get(0);
        if west_remains {
            0
        } else {
            1
        }
    }
}

impl VcRoutingAlgorithm for MadY {
    fn name(&self) -> String {
        "mad-y".to_owned()
    }

    fn provisioning(&self, topo: &dyn Topology) -> Vec<u8> {
        assert_eq!(topo.num_dims(), 2, "mad-y is a 2D-mesh algorithm");
        assert!(
            !topo.wraps(0) && !topo.wraps(1),
            "mad-y is a mesh algorithm"
        );
        vec![1, 2]
    }

    fn route_vc(
        &self,
        topo: &dyn Topology,
        _table: &VcTable,
        current: NodeId,
        dest: NodeId,
        _arrived: Option<VirtualDirection>,
    ) -> VDirSet {
        let mut set = VDirSet::new();
        for dir in topo.minimal_directions(current, dest) {
            let class = if dir.dim() == 0 {
                0
            } else {
                Self::y_class(topo, current, dest)
            };
            set.insert(VirtualDirection::new(dir, class));
        }
        set
    }

    fn is_minimal(&self) -> bool {
        true
    }
}

/// The virtual-turn relation of mad-y, for dependency-graph
/// verification: which lane-to-lane transitions the discipline ever
/// produces.
pub fn mady_may_follow(from: VirtualDirection, to: VirtualDirection) -> bool {
    use Direction as D;
    let (f, t) = (from.dir(), to.dir());
    // No 180-degree reversals.
    if f.dim() == t.dim() && f.sign() != t.sign() {
        return false;
    }
    let y1 = |v: VirtualDirection| v.dir().dim() == 1 && v.class() == 0;
    let y2 = |v: VirtualDirection| v.dir().dim() == 1 && v.class() == 1;
    let west = |v: VirtualDirection| v.dir() == D::WEST;
    let east = |v: VirtualDirection| v.dir() == D::EAST;

    if west(to) {
        // Into west: from west (straight) or y1 (west still remained).
        west(from) || y1(from)
    } else if east(to) {
        // Into east: from east or y2 (west exhausted).
        east(from) || y2(from)
    } else if y1(to) {
        // Into y1: from west or straight y1.
        west(from) || (y1(from) && f == t)
    } else {
        // Into y2: from west (last west hop just done), east, or
        // straight y2.
        debug_assert!(y2(to));
        west(from) || east(from) || (y2(from) && f == t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{check_vc_routing_contract, walk_vc};
    use turnroute_topology::Mesh;

    #[test]
    fn contract_holds() {
        let mesh = Mesh::new_2d(5, 5);
        let mady = MadY::new();
        let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
        check_vc_routing_contract(&mady, &mesh, &table);
    }

    #[test]
    fn offers_every_productive_direction() {
        // Full adaptivity at the router level: every productive
        // physical direction has a permitted lane at every state.
        let mesh = Mesh::new_2d(6, 6);
        let mady = MadY::new();
        let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
        for s in mesh.nodes() {
            for d in mesh.nodes() {
                let offered = mady.route_vc(&mesh, &table, s, d, None).physical();
                assert_eq!(offered, mesh.minimal_directions(s, d));
            }
        }
    }

    #[test]
    fn y_class_tracks_west_offset() {
        let mesh = Mesh::new_2d(8, 8);
        let mady = MadY::new();
        let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
        let s = mesh.node_at(&[4, 4].into());
        // Destination northwest: y hops use y1.
        let d = mesh.node_at(&[1, 6].into());
        let set = mady.route_vc(&mesh, &table, s, d, None);
        assert!(set.contains(VirtualDirection::new(Direction::NORTH, 0)));
        assert!(!set.contains(VirtualDirection::new(Direction::NORTH, 1)));
        // Destination northeast: y hops use y2.
        let d = mesh.node_at(&[6, 6].into());
        let set = mady.route_vc(&mesh, &table, s, d, None);
        assert!(set.contains(VirtualDirection::new(Direction::NORTH, 1)));
        assert!(!set.contains(VirtualDirection::new(Direction::NORTH, 0)));
    }

    #[test]
    fn walks_are_minimal() {
        let mesh = Mesh::new_2d(7, 7);
        let mady = MadY::new();
        let table = VcTable::new(&mesh, &mady.provisioning(&mesh));
        for (a, b) in [(0usize, 48usize), (6, 42), (24, 3), (45, 10)] {
            let (s, d) = (a.into(), b.into());
            let path = walk_vc(&mady, &mesh, &table, s, d);
            assert_eq!(path.len() - 1, mesh.distance(s, d));
        }
    }

    #[test]
    fn relation_reflects_the_discipline() {
        use Direction as D;
        let w = VirtualDirection::new(D::WEST, 0);
        let e = VirtualDirection::new(D::EAST, 0);
        let n1 = VirtualDirection::new(D::NORTH, 0);
        let n2 = VirtualDirection::new(D::NORTH, 1);
        let s1 = VirtualDirection::new(D::SOUTH, 0);
        assert!(mady_may_follow(w, n1));
        assert!(mady_may_follow(w, n2));
        assert!(mady_may_follow(n1, w));
        assert!(!mady_may_follow(n2, w), "y2 never turns west");
        assert!(!mady_may_follow(n1, e), "y1 never turns east");
        assert!(mady_may_follow(n2, e));
        assert!(mady_may_follow(e, n2));
        assert!(!mady_may_follow(e, n1), "east never feeds y1");
        assert!(!mady_may_follow(n1, s1), "no reversals");
        assert!(!mady_may_follow(n1, n2), "no y1 -> y2 class switch");
    }
}
