//! The routing algorithm a synthesized turn model compiles into.

use turnroute_core::{ChannelDependencyGraph, RoutingAlgorithm};
use turnroute_topology::{ChannelId, DirSet, Direction, NodeId, Topology};

/// A word-packed bitset over channel ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChannelSet {
    words: Vec<u64>,
}

impl ChannelSet {
    pub(crate) fn new(num_channels: usize) -> ChannelSet {
        ChannelSet {
            words: vec![0; num_channels.div_ceil(64)],
        }
    }

    pub(crate) fn insert(&mut self, c: ChannelId) {
        self.words[c.index() / 64] |= 1 << (c.index() % 64);
    }

    pub(crate) fn contains(&self, c: ChannelId) -> bool {
        self.words[c.index() / 64] >> (c.index() % 64) & 1 == 1
    }
}

/// A deadlock-free adaptive routing algorithm compiled from a
/// synthesized turn-prohibition set (see [`synthesize`]).
///
/// The algorithm carries the full permitted-turn relation as
/// per-channel successor sets, plus one precomputed *deliverability*
/// bitset per destination: the channels from which the destination
/// remains reachable without ever taking a prohibited turn. `route`
/// offers exactly the outgoing channels that are (a) deliverable for
/// the destination and (b) permitted after the arrival channel — so a
/// packet is never steered into a corner the relation cannot route out
/// of.
///
/// The relation is validated acyclic at construction (Dally–Seitz via
/// [`ChannelDependencyGraph`]), which also bounds every walk: each hop
/// strictly decreases the channel's topological number.
///
/// Instances are topology-specific: `route` must be called with the
/// same topology the algorithm was synthesized for (the universal
/// assumption of this workspace's algorithm constructors).
///
/// [`synthesize`]: crate::synthesize
#[derive(Debug)]
pub struct SynthesizedRouting {
    name: String,
    num_dirs: usize,
    /// `node * num_dirs + dir.index()` -> incoming channel.
    channel_into: Vec<Option<ChannelId>>,
    /// Outgoing `(direction, channel)` pairs per node, direction-sorted.
    outgoing: Vec<Vec<(Direction, ChannelId)>>,
    /// Permitted successor channels, one bitset per channel.
    allowed: Vec<ChannelSet>,
    /// Channels from which `dest` stays reachable, one bitset per dest.
    deliverable: Vec<ChannelSet>,
}

impl SynthesizedRouting {
    /// Compiles a permitted-turn relation into a routing algorithm.
    ///
    /// `successors[c]` lists the channels a packet holding channel `c`
    /// may request next. Returns `None` if the relation's channel
    /// dependency graph has a cycle (the caller's candidate was not
    /// deadlock free) — otherwise deliverability is computed by a
    /// backward closure in topological order.
    pub(crate) fn compile(
        topo: &dyn Topology,
        name: String,
        successors: &[Vec<ChannelId>],
    ) -> Option<SynthesizedRouting> {
        let cdg = ChannelDependencyGraph::from_successors(successors.to_vec());
        let numbering = cdg.topological_numbering()?;
        let num_channels = topo.num_channels();
        let num_nodes = topo.num_nodes();
        let num_dirs = 2 * topo.num_dims();

        let mut channel_into = vec![None; num_nodes * num_dirs];
        let mut outgoing: Vec<Vec<(Direction, ChannelId)>> = vec![Vec::new(); num_nodes];
        for (i, ch) in topo.channels().iter().enumerate() {
            let id = ChannelId::new(i);
            channel_into[ch.dst.index() * num_dirs + ch.dir.index()] = Some(id);
            outgoing[ch.src.index()].push((ch.dir, id));
        }
        for list in &mut outgoing {
            list.sort_unstable_by_key(|&(dir, _)| dir.index());
        }

        let mut allowed = vec![ChannelSet::new(num_channels); num_channels];
        for (c, succs) in successors.iter().enumerate() {
            for &s in succs {
                allowed[c].insert(s);
            }
        }

        // Deliverability: numbers strictly decrease along dependencies,
        // so visiting channels in ascending number order sees every
        // permitted successor before the channel that may request it.
        let mut by_number: Vec<usize> = (0..num_channels).collect();
        by_number.sort_unstable_by_key(|&c| numbering[c]);
        let channels = topo.channels();
        let mut deliverable = vec![ChannelSet::new(num_channels); num_nodes];
        for &c in &by_number {
            let dst = channels[c].dst.index();
            deliverable[dst].insert(ChannelId::new(c));
            for (dest, del) in deliverable.iter_mut().enumerate() {
                if dest == dst || del.contains(ChannelId::new(c)) {
                    continue;
                }
                if successors[c].iter().any(|&s| del.contains(s)) {
                    del.insert(ChannelId::new(c));
                }
            }
        }

        Some(SynthesizedRouting {
            name,
            num_dirs,
            channel_into,
            outgoing,
            allowed,
            deliverable,
        })
    }

    /// Renames the algorithm — e.g. to the CLI spec string (`synth:7`)
    /// so sweep CSVs and reports round-trip through the job server.
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    /// `true` if some channel of `src` can deliver to `dest` — the
    /// all-pairs reachability predicate the synthesis search validates.
    pub(crate) fn source_can_reach(&self, src: NodeId, dest: NodeId) -> bool {
        self.outgoing[src.index()]
            .iter()
            .any(|&(_, c)| self.deliverable[dest.index()].contains(c))
    }
}

impl RoutingAlgorithm for SynthesizedRouting {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn route(
        &self,
        _topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        let mut set = DirSet::new();
        if current == dest {
            return set;
        }
        let holding = arrived.and_then(|dir| {
            debug_assert!(dir.index() < self.num_dirs);
            self.channel_into[current.index() * self.num_dirs + dir.index()]
        });
        let deliverable = &self.deliverable[dest.index()];
        for &(dir, c) in &self.outgoing[current.index()] {
            if !deliverable.contains(c) {
                continue;
            }
            if let Some(held) = holding {
                if !self.allowed[held.index()].contains(c) {
                    continue;
                }
            }
            set.insert(dir);
        }
        set
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn is_minimal(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphSpec;
    use crate::GraphTopology;

    /// A hand-built relation on a 3-ring: total order by channel id
    /// (c1 may be followed by any adjacent lower-numbered channel).
    fn ring3_by_id() -> (GraphTopology, Vec<Vec<ChannelId>>) {
        let topo = GraphTopology::new(&GraphSpec::ring(3)).unwrap();
        let channels = topo.channels().to_vec();
        let succ = channels
            .iter()
            .enumerate()
            .map(|(i, c1)| {
                channels
                    .iter()
                    .enumerate()
                    .filter(|&(j, c2)| c1.dst == c2.src && j < i && c2.dst != c1.src)
                    .map(|(j, _)| ChannelId::new(j))
                    .collect()
            })
            .collect();
        (topo, succ)
    }

    #[test]
    fn compile_rejects_cyclic_relations() {
        let topo = GraphTopology::new(&GraphSpec::ring(3)).unwrap();
        // Everything adjacent allowed: the ring's dependency cycle
        // survives, so compilation must refuse.
        let channels = topo.channels().to_vec();
        let succ: Vec<Vec<ChannelId>> = channels
            .iter()
            .map(|c1| {
                channels
                    .iter()
                    .enumerate()
                    .filter(|&(_, c2)| c1.dst == c2.src && c2.dst != c1.src)
                    .map(|(j, _)| ChannelId::new(j))
                    .collect()
            })
            .collect();
        assert!(SynthesizedRouting::compile(&topo, "synth".into(), &succ).is_none());
    }

    #[test]
    fn route_only_offers_deliverable_permitted_channels() {
        let (topo, succ) = ring3_by_id();
        let algo = SynthesizedRouting::compile(&topo, "synth".into(), &succ).unwrap();
        for src in topo.nodes() {
            for dest in topo.nodes() {
                if src == dest {
                    assert!(algo.route(&topo, src, dest, None).is_empty());
                    continue;
                }
                // Source injection: every pair must have some channel.
                if algo.source_can_reach(src, dest) {
                    assert!(!algo.route(&topo, src, dest, None).is_empty());
                }
            }
        }
    }

    #[test]
    fn walks_terminate_and_deliver() {
        let (topo, succ) = ring3_by_id();
        let algo = SynthesizedRouting::compile(&topo, "synth".into(), &succ).unwrap();
        for src in topo.nodes() {
            for dest in topo.nodes() {
                if src == dest || !algo.source_can_reach(src, dest) {
                    continue;
                }
                let path = turnroute_core::walk(&algo, &topo, src, dest);
                assert_eq!(*path.last().unwrap(), dest);
            }
        }
    }
}
