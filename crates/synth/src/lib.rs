//! # turnroute-synth
//!
//! Arbitrary-graph topologies and automatic turn-prohibition
//! synthesis.
//!
//! The turn model (Glass & Ni, ISCA 1994/1998) hand-derives deadlock-
//! free adaptive routing for meshes, tori and hypercubes by prohibiting
//! a minimal set of turns. This crate generalizes both halves of that
//! story to networks the paper never considered:
//!
//! * [`GraphSpec`] / [`GraphTopology`] put *any* strongly-connected
//!   directed graph — parsed from an edge-list file or produced by the
//!   built-in full-mesh / ring / dragonfly / fat-tree generators —
//!   behind the workspace's [`Topology`] trait, so the simulation
//!   engine, sweeps, fault pruning and conformance checking all run on
//!   it unchanged.
//! * [`synthesize`] *searches* for a minimal turn-prohibition set on
//!   such a graph: seeded up\*/down\*-style channel orderings generate
//!   candidate relations, a greedy pass re-admits every turn that keeps
//!   the channel dependency graph acyclic, candidates are validated
//!   (Dally–Seitz acyclicity + all-pairs reachability) and scored by
//!   adaptiveness (permitted-path counts), in parallel. The winner
//!   compiles into a [`SynthesizedRouting`], a [`RoutingAlgorithm`]
//!   like any other.
//!
//! The search is deterministic: the same seed yields a byte-identical
//! [`SynthesisReport`] regardless of thread count.
//!
//! [`Topology`]: turnroute_topology::Topology
//! [`RoutingAlgorithm`]: turnroute_core::RoutingAlgorithm

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod routing;
mod search;
mod topology;

pub use graph::{GraphError, GraphSpec};
pub use routing::SynthesizedRouting;
pub use search::{
    synthesize, ProhibitedTurn, Synthesis, SynthesisError, SynthesisOptions, SynthesisReport,
    DEFAULT_CANDIDATES,
};
pub use topology::GraphTopology;
