//! Arbitrary directed graphs: the edge-list file format and the
//! built-in generators (full-mesh, ring, dragonfly, fat-tree).
//!
//! A [`GraphSpec`] is the raw material a
//! [`GraphTopology`](crate::GraphTopology) is built from: a node count
//! plus a list of directed edges. Specs come from three places — the
//! text format parsed by [`GraphSpec::parse`], the generators below, or
//! hand-built lists in tests.
//!
//! # File format
//!
//! One directive or edge per line; `#` starts a comment:
//!
//! ```text
//! # A 3-node directed triangle plus one bidirectional chord.
//! nodes 3
//! 0 1
//! 1 2
//! 2 0
//! 0 <-> 2
//! ```
//!
//! * `nodes N` (optional) declares the node count; without it the count
//!   is inferred as the largest endpoint + 1.
//! * `u v` adds the directed edge `u -> v`.
//! * `u <-> v` adds both `u -> v` and `v -> u`.
//!
//! Duplicate edges are collapsed; self-loops are rejected.

use std::fmt;

/// A validation or parse failure while building a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A line of the edge-list format did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The graph has fewer than two nodes.
    TooFewNodes(usize),
    /// The graph has no edges.
    NoEdges,
    /// An edge endpoint is `>= num_nodes`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: usize,
        /// The declared node count.
        num_nodes: usize,
    },
    /// An edge connects a node to itself.
    SelfLoop(usize),
    /// The graph is not strongly connected: no directed path exists.
    NotStronglyConnected {
        /// Source of the missing path.
        from: usize,
        /// Unreachable destination.
        to: usize,
    },
    /// Direction labelling needs more than the 32 direction slots a
    /// `DirSet` can hold (the graph's degree is too high).
    TooManyDirections {
        /// The hard limit (32).
        limit: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Parse { line, message } => write!(f, "line {line}: {message}"),
            GraphError::TooFewNodes(n) => write!(f, "a topology needs at least 2 nodes, got {n}"),
            GraphError::NoEdges => write!(f, "the graph has no edges"),
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            GraphError::SelfLoop(node) => write!(f, "self-loop on node {node}"),
            GraphError::NotStronglyConnected { from, to } => write!(
                f,
                "not strongly connected: no directed path from node {from} to node {to}"
            ),
            GraphError::TooManyDirections { limit } => write!(
                f,
                "the graph's degree needs more than {limit} direction labels"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// A raw directed graph: node count plus deduplicated, sorted edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// Number of nodes (dense ids `0..num_nodes`).
    pub num_nodes: usize,
    /// Directed edges `(src, dst)`, sorted and deduplicated.
    pub edges: Vec<(usize, usize)>,
    /// The spec string this graph round-trips through (`fullmesh:8`,
    /// `graph:FILE`, ...), used as the topology label.
    pub label: String,
}

impl GraphSpec {
    /// Builds a spec from explicit parts, normalizing the edge list.
    pub fn new(num_nodes: usize, mut edges: Vec<(usize, usize)>, label: String) -> GraphSpec {
        edges.sort_unstable();
        edges.dedup();
        GraphSpec {
            num_nodes,
            edges,
            label,
        }
    }

    /// Parses the edge-list text format (see the module docs).
    pub fn parse(text: &str, label: String) -> Result<GraphSpec, GraphError> {
        let mut declared_nodes: Option<usize> = None;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut max_endpoint = 0usize;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| GraphError::Parse {
                line: line_no,
                message,
            };
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.as_slice() {
                ["nodes", n] => {
                    let n: usize = n
                        .parse()
                        .map_err(|_| err(format!("bad node count '{n}'")))?;
                    if declared_nodes.replace(n).is_some() {
                        return Err(err("duplicate 'nodes' directive".into()));
                    }
                }
                [u, v] | [u, "<->", v] => {
                    let both = tokens.len() == 3;
                    let u: usize = u.parse().map_err(|_| err(format!("bad node '{u}'")))?;
                    let v: usize = v.parse().map_err(|_| err(format!("bad node '{v}'")))?;
                    max_endpoint = max_endpoint.max(u).max(v);
                    edges.push((u, v));
                    if both {
                        edges.push((v, u));
                    }
                }
                _ => {
                    return Err(err(format!(
                        "expected 'nodes N', 'u v' or 'u <-> v', got '{line}'"
                    )))
                }
            }
        }
        if edges.is_empty() {
            return Err(GraphError::NoEdges);
        }
        let num_nodes = declared_nodes.unwrap_or(max_endpoint + 1);
        Ok(GraphSpec::new(num_nodes, edges, label))
    }

    /// A full mesh (complete digraph) on `n` nodes: every ordered pair
    /// is a channel. The topology of Cano et al. (HOTI 2025).
    pub fn full_mesh(n: usize) -> GraphSpec {
        let edges = (0..n)
            .flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v)))
            .collect();
        GraphSpec::new(n, edges, format!("fullmesh:{n}"))
    }

    /// A bidirectional ring on `n` nodes.
    pub fn ring(n: usize) -> GraphSpec {
        let mut edges = Vec::with_capacity(2 * n);
        for u in 0..n {
            edges.push((u, (u + 1) % n));
            edges.push(((u + 1) % n, u));
        }
        GraphSpec::new(n, edges, format!("ring:{n}"))
    }

    /// A dragonfly with `groups` groups of `routers` routers each:
    /// all-to-all inside every group, and one bidirectional global link
    /// between every pair of groups (the canonical `h = 1` wiring, with
    /// the global link for pair `(g, g')` landing on a deterministic
    /// router of each group). The 16-node instance is `dragonfly:4,4`.
    pub fn dragonfly(routers: usize, groups: usize) -> GraphSpec {
        let mut edges = Vec::new();
        for g in 0..groups {
            let base = g * routers;
            for a in 0..routers {
                for b in 0..routers {
                    if a != b {
                        edges.push((base + a, base + b));
                    }
                }
            }
        }
        // Global links: spread each group's partners across its routers.
        let local = |g: usize, partner: usize| {
            let slot = if partner < g { partner } else { partner - 1 };
            g * routers + slot % routers
        };
        for g1 in 0..groups {
            for g2 in g1 + 1..groups {
                let (a, b) = (local(g1, g2), local(g2, g1));
                edges.push((a, b));
                edges.push((b, a));
            }
        }
        GraphSpec::new(
            routers * groups,
            edges,
            format!("dragonfly:{routers},{groups}"),
        )
    }

    /// A two-level fat tree: `leaves` leaf switches each wired (both
    /// ways) to all of `spines` spine switches. Spine nodes participate
    /// in traffic like any other node — this models the fat tree as a
    /// direct network, which is what the wormhole engine simulates.
    pub fn fat_tree(leaves: usize, spines: usize) -> GraphSpec {
        let mut edges = Vec::new();
        for l in 0..leaves {
            for s in 0..spines {
                edges.push((l, leaves + s));
                edges.push((leaves + s, l));
            }
        }
        GraphSpec::new(leaves + spines, edges, format!("fattree:{leaves},{spines}"))
    }

    /// Checks node count, edge ranges, self-loops and strong
    /// connectivity. [`GraphTopology::new`](crate::GraphTopology::new)
    /// calls this; it is public so file-driven tools can validate
    /// before building.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.num_nodes < 2 {
            return Err(GraphError::TooFewNodes(self.num_nodes));
        }
        if self.edges.is_empty() {
            return Err(GraphError::NoEdges);
        }
        for &(u, v) in &self.edges {
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            let node = u.max(v);
            if node >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node,
                    num_nodes: self.num_nodes,
                });
            }
        }
        // Strong connectivity: node 0 must reach everyone along edges,
        // and everyone must reach node 0 (along reversed edges).
        let forward = self.reachable_from_zero(false);
        if let Some(to) = (0..self.num_nodes).find(|&n| !forward[n]) {
            return Err(GraphError::NotStronglyConnected { from: 0, to });
        }
        let backward = self.reachable_from_zero(true);
        if let Some(from) = (0..self.num_nodes).find(|&n| !backward[n]) {
            return Err(GraphError::NotStronglyConnected { from, to: 0 });
        }
        Ok(())
    }

    fn reachable_from_zero(&self, reversed: bool) -> Vec<bool> {
        let mut adj = vec![Vec::new(); self.num_nodes];
        for &(u, v) in &self.edges {
            let (u, v) = if reversed { (v, u) } else { (u, v) };
            adj[u].push(v);
        }
        let mut seen = vec![false; self.num_nodes];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_directives_edges_and_comments() {
        let text = "# triangle\nnodes 3\n0 1\n1 2 # inline\n2 0\n\n0 <-> 2\n";
        let spec = GraphSpec::parse(text, "graph:test".into()).unwrap();
        assert_eq!(spec.num_nodes, 3);
        assert_eq!(spec.edges, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn infers_node_count_without_directive() {
        let spec = GraphSpec::parse("0 <-> 5\n", "graph:t".into()).unwrap();
        assert_eq!(spec.num_nodes, 6);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = GraphSpec::parse("0 1\nfrogs\n", "graph:t".into()).unwrap_err();
        assert_eq!(
            err,
            GraphError::Parse {
                line: 2,
                message: "expected 'nodes N', 'u v' or 'u <-> v', got 'frogs'".into()
            }
        );
        assert!(GraphSpec::parse("", "graph:t".into()).is_err());
        assert!(GraphSpec::parse("nodes 3\nnodes 3\n0 1\n", "graph:t".into()).is_err());
    }

    #[test]
    fn validate_rejects_malformed_graphs() {
        let loop_ = GraphSpec::new(3, vec![(0, 1), (1, 1)], "t".into());
        assert_eq!(loop_.validate(), Err(GraphError::SelfLoop(1)));
        let oob = GraphSpec::new(2, vec![(0, 1), (1, 0), (0, 5)], "t".into());
        assert!(matches!(
            oob.validate(),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
        // A one-way pair: 1 cannot reach 0.
        let weak = GraphSpec::new(2, vec![(0, 1)], "t".into());
        assert!(matches!(
            weak.validate(),
            Err(GraphError::NotStronglyConnected { .. })
        ));
    }

    #[test]
    fn full_mesh_has_all_ordered_pairs() {
        let spec = GraphSpec::full_mesh(8);
        assert_eq!(spec.num_nodes, 8);
        assert_eq!(spec.edges.len(), 56);
        assert!(spec.validate().is_ok());
        assert_eq!(spec.label, "fullmesh:8");
    }

    #[test]
    fn ring_is_bidirectional() {
        let spec = GraphSpec::ring(5);
        assert_eq!(spec.edges.len(), 10);
        assert!(spec.validate().is_ok());
        assert!(spec.edges.contains(&(4, 0)) && spec.edges.contains(&(0, 4)));
    }

    #[test]
    fn dragonfly_16_nodes_is_connected() {
        let spec = GraphSpec::dragonfly(4, 4);
        assert_eq!(spec.num_nodes, 16);
        // 4 groups x 12 intra edges + 6 group pairs x 2 global edges.
        assert_eq!(spec.edges.len(), 4 * 12 + 6 * 2);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn fat_tree_is_complete_bipartite() {
        let spec = GraphSpec::fat_tree(4, 2);
        assert_eq!(spec.num_nodes, 6);
        assert_eq!(spec.edges.len(), 16);
        assert!(spec.validate().is_ok());
    }
}
