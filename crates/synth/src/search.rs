//! The turn-prohibition synthesis search.
//!
//! The turn model derives deadlock freedom from a channel numbering:
//! if every permitted turn moves to a strictly lower-numbered channel,
//! the channel dependency graph is acyclic (Dally–Seitz). Synthesis
//! inverts the hand derivation: *search* over numberings, keep the
//! relations that stay all-pairs reachable, and pick the one that
//! permits the most paths.
//!
//! Each candidate is seeded from a spanning-tree ordering (the up\*/
//! down\* family): a BFS from a rotating root ranks the nodes by
//! `(level, seeded tie-break)`, channels toward lower-ranked nodes
//! become "up" and the rest "down", and the induced numbering permits
//! up→up, up→down and down→down turns — acyclic by construction and
//! all-pairs reachable on any bidirectionally-wired graph. A greedy
//! second phase then re-admits every prohibited turn that keeps the
//! dependency graph acyclic (checked per turn, and re-validated with
//! [`ChannelDependencyGraph::is_acyclic`] on the final relation), which
//! is what makes the result a *minimal* prohibition set: removing any
//! remaining prohibited turn would close a cycle at the point it was
//! considered.
//!
//! Candidates are scored by adaptiveness — the total number of
//! permitted paths over all (sampled, for large networks) source–
//! destination pairs, via [`count_paths`] — and evaluated in parallel
//! across worker threads. The winner is chosen by `(score desc,
//! permitted turns desc, candidate index asc)`, so the outcome is
//! byte-identical for any thread count.

use crate::routing::SynthesizedRouting;
use std::fmt;
use std::sync::mpsc;
use turnroute_core::{count_paths, ChannelDependencyGraph};
use turnroute_rng::{split_mix_64, Rng, StdRng};
use turnroute_topology::{ChannelId, NodeId, Topology};

/// Default candidate-space size for [`SynthesisOptions`].
pub const DEFAULT_CANDIDATES: usize = 24;

/// Above this many source–destination pairs the adaptiveness score is
/// computed over a deterministic sample instead of exhaustively.
const MAX_EXHAUSTIVE_PAIRS: usize = 4096;

/// Tuning knobs for [`synthesize`].
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Seed for the candidate orderings and tie-breaks. The same seed
    /// produces a byte-identical [`SynthesisReport`].
    pub seed: u64,
    /// How many candidate orderings to evaluate.
    pub candidates: usize,
    /// Worker threads for candidate evaluation; 0 means one per
    /// available core. The result does not depend on this.
    pub threads: usize,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            seed: 0,
            candidates: DEFAULT_CANDIDATES,
            threads: 0,
        }
    }
}

/// Why synthesis produced nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// `candidates` was 0.
    NoCandidates,
    /// Every candidate relation left some pair unreachable (possible on
    /// graphs with one-way links; bidirectionally-wired graphs always
    /// admit an up*/down* candidate).
    NoViableCandidate {
        /// How many candidates were tried.
        candidates: usize,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NoCandidates => write!(f, "need at least one candidate"),
            SynthesisError::NoViableCandidate { candidates } => write!(
                f,
                "no deadlock-free all-pairs-reachable relation found in {candidates} candidates \
                 (one-way links can make this unsatisfiable)"
            ),
        }
    }
}

impl std::error::Error for SynthesisError {}

/// One prohibited turn of the winning relation, with its node path for
/// human-readable reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProhibitedTurn {
    /// The channel the packet holds.
    pub from: ChannelId,
    /// The adjacent channel it may not request next.
    pub to: ChannelId,
    /// Source router of `from`.
    pub src: NodeId,
    /// The router where the turn would happen.
    pub via: NodeId,
    /// Destination router of `to`.
    pub dst: NodeId,
}

/// The outcome of a synthesis run: everything needed to reproduce,
/// verify and rank the winning turn model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisReport {
    /// Topology label (`fullmesh:8`, `graph:FILE`, ...).
    pub topology: String,
    /// Node count.
    pub num_nodes: usize,
    /// Channel count.
    pub num_channels: usize,
    /// Direction pairs the topology labels channels with.
    pub num_dims: usize,
    /// The search seed.
    pub seed: u64,
    /// Candidates evaluated.
    pub candidates: usize,
    /// Candidates that were acyclic *and* all-pairs reachable.
    pub viable: usize,
    /// Index of the winning candidate.
    pub winner: usize,
    /// Adjacent channel pairs (possible turns, 180° turns excluded).
    pub turn_pairs: usize,
    /// Turns the winner permits.
    pub allowed: usize,
    /// Turns the winner prohibits, sorted by channel ids.
    pub prohibited: Vec<ProhibitedTurn>,
    /// Total permitted paths over the scored pairs (saturating).
    pub score: u128,
    /// How many source–destination pairs were scored.
    pub score_pairs: usize,
    /// `true` if the score pairs were sampled rather than exhaustive.
    pub sampled: bool,
    /// FNV-1a fingerprint of the rendered report body; byte-identical
    /// output has an identical fingerprint.
    pub fingerprint: u64,
}

impl SynthesisReport {
    /// Renders the canonical text report. Same seed ⇒ byte-identical
    /// output, which `scripts/check.sh` asserts.
    pub fn render(&self) -> String {
        let mut out = self.render_body();
        out.push_str(&format!("fingerprint: {:016x}\n", self.fingerprint));
        out
    }

    fn render_body(&self) -> String {
        let mut out = String::new();
        out.push_str("turnroute-synth v1\n");
        out.push_str(&format!(
            "topology: {} ({} nodes, {} channels, {} direction pairs)\n",
            self.topology, self.num_nodes, self.num_channels, self.num_dims
        ));
        out.push_str(&format!(
            "search: seed {}, {} candidates, {} viable, winner {}\n",
            self.seed, self.candidates, self.viable, self.winner
        ));
        out.push_str(&format!(
            "turns: {} adjacent pairs, {} allowed, {} prohibited\n",
            self.turn_pairs,
            self.allowed,
            self.prohibited.len()
        ));
        out.push_str(&format!(
            "adaptiveness: {} permitted paths over {} pairs ({})\n",
            self.score,
            self.score_pairs,
            if self.sampled {
                "sampled"
            } else {
                "exhaustive"
            }
        ));
        out.push_str(&format!(
            "verified: channel dependency graph acyclic; all {} source-destination pairs reachable\n",
            self.num_nodes * (self.num_nodes - 1)
        ));
        out.push_str("prohibited turns:\n");
        for t in &self.prohibited {
            out.push_str(&format!(
                "  {} -> {}  {} -> {} -> {}\n",
                t.from, t.to, t.src, t.via, t.dst
            ));
        }
        out
    }
}

/// A synthesized turn model: the compiled routing algorithm plus its
/// report.
#[derive(Debug)]
pub struct Synthesis {
    /// The winning relation as a routing algorithm.
    pub routing: SynthesizedRouting,
    /// The canonical, deterministic description of the search outcome.
    pub report: SynthesisReport,
}

/// Searches for a minimal turn-prohibition set on `topo` (see the
/// module docs for the strategy) and compiles the winner into a
/// [`SynthesizedRouting`].
///
/// Works on any [`Topology`] — the graph topologies of this crate, but
/// also meshes or hypercubes, where the search rediscovers orderings in
/// the spirit of the paper's hand-derived ones.
pub fn synthesize(
    topo: &dyn Topology,
    opts: &SynthesisOptions,
) -> Result<Synthesis, SynthesisError> {
    if opts.candidates == 0 {
        return Err(SynthesisError::NoCandidates);
    }
    let channels = topo.channels();
    let num_channels = channels.len();
    let n = topo.num_nodes();

    // Adjacent non-180° channel pairs: the turns a relation decides on.
    let mut followers: Vec<Vec<usize>> = vec![Vec::new(); num_channels];
    {
        let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, c) in channels.iter().enumerate() {
            outgoing[c.src.index()].push(i);
        }
        for (i, c1) in channels.iter().enumerate() {
            for &j in &outgoing[c1.dst.index()] {
                if channels[j].dst != c1.src {
                    followers[i].push(j);
                }
            }
        }
    }
    let turn_pairs: usize = followers.iter().map(Vec::len).sum();

    // Undirected adjacency for the spanning-tree orderings.
    let mut undirected: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in channels {
        undirected[c.src.index()].push(c.dst.index());
        undirected[c.dst.index()].push(c.src.index());
    }

    let score_pairs = scoring_pairs(n, opts.seed);
    let sampled = score_pairs.len() < n * (n - 1);

    // Evaluate the candidate space in parallel; candidate index decides
    // every tie, so the outcome is thread-count invariant.
    let workers = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        opts.threads
    }
    .min(opts.candidates);
    let mut outcomes: Vec<Option<Candidate>> = Vec::new();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for w in 0..workers {
            let tx = tx.clone();
            let followers = &followers;
            let undirected = &undirected;
            let score_pairs = &score_pairs;
            scope.spawn(move || {
                let mut index = w;
                while index < opts.candidates {
                    let result = evaluate_candidate(
                        topo,
                        followers,
                        undirected,
                        score_pairs,
                        index,
                        opts.seed,
                    );
                    if tx.send((index, result)).is_err() {
                        return;
                    }
                    index += workers;
                }
            });
        }
        drop(tx);
        outcomes = vec![None; opts.candidates];
        for (index, result) in rx {
            outcomes[index] = result;
        }
    });

    let viable = outcomes.iter().flatten().count();
    let mut best: Option<(usize, &Candidate)> = None;
    for (index, candidate) in outcomes.iter().enumerate() {
        let Some(c) = candidate else { continue };
        let better = match best {
            None => true,
            Some((_, b)) => c.score > b.score || (c.score == b.score && c.allowed > b.allowed),
        };
        if better {
            best = Some((index, c));
        }
    }
    let Some((winner, candidate)) = best else {
        return Err(SynthesisError::NoViableCandidate {
            candidates: opts.candidates,
        });
    };

    // Re-validate the winner the way the module docs promise: the
    // dependency graph of the emitted relation must be acyclic
    // (Dally–Seitz) and every pair reachable.
    let cdg = ChannelDependencyGraph::from_successors(candidate.successors.clone());
    assert!(cdg.is_acyclic(), "winner relation must be acyclic");
    let routing = SynthesizedRouting::compile(topo, "synth".into(), &candidate.successors)
        .expect("acyclic winner compiles");
    for s in topo.nodes() {
        for d in topo.nodes() {
            assert!(
                s == d || routing.source_can_reach(s, d),
                "winner relation must be all-pairs reachable"
            );
        }
    }

    let mut prohibited = Vec::new();
    for (i, follows) in followers.iter().enumerate() {
        for &j in follows {
            if !candidate.successors[i].contains(&ChannelId::new(j)) {
                prohibited.push(ProhibitedTurn {
                    from: ChannelId::new(i),
                    to: ChannelId::new(j),
                    src: channels[i].src,
                    via: channels[i].dst,
                    dst: channels[j].dst,
                });
            }
        }
    }

    let mut report = SynthesisReport {
        topology: topo.label(),
        num_nodes: n,
        num_channels,
        num_dims: topo.num_dims(),
        seed: opts.seed,
        candidates: opts.candidates,
        viable,
        winner,
        turn_pairs,
        allowed: candidate.allowed,
        prohibited,
        score: candidate.score,
        score_pairs: score_pairs.len(),
        sampled,
        fingerprint: 0,
    };
    report.fingerprint = fnv1a(report.render_body().as_bytes());
    Ok(Synthesis { routing, report })
}

/// A viable candidate: its relation, permitted-turn count and score.
#[derive(Clone)]
struct Candidate {
    successors: Vec<Vec<ChannelId>>,
    allowed: usize,
    score: u128,
}

/// Evaluates candidate `index`: ordering → base relation → greedy
/// re-admission → acyclicity + reachability validation → score.
/// `None` if the relation leaves any pair unreachable.
fn evaluate_candidate(
    topo: &dyn Topology,
    followers: &[Vec<usize>],
    undirected: &[Vec<usize>],
    score_pairs: &[(NodeId, NodeId)],
    index: usize,
    seed: u64,
) -> Option<Candidate> {
    let channels = topo.channels();
    let num_channels = channels.len();
    let n = topo.num_nodes();
    let mut state = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(split_mix_64(&mut state));

    // Rank nodes by (BFS level from the rotating root, seeded shuffle).
    let root = index % n;
    let mut level = vec![usize::MAX; n];
    level[root] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(u) = queue.pop_front() {
        for &v in &undirected[u] {
            if level[v] == usize::MAX {
                level[v] = level[u] + 1;
                queue.push_back(v);
            }
        }
    }
    let mut tiebreak: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..i + 1);
        tiebreak.swap(i, j);
    }
    let mut pos = vec![0usize; n];
    for (p, &node) in tiebreak.iter().enumerate() {
        pos[node] = p;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&v| (level[v], pos[v]));
    let mut rank = vec![0usize; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v] = r;
    }

    // Channel numbering: "up" channels (toward lower rank) live above
    // every "down" channel, and each class decreases along any walk —
    // so permitting only number-decreasing turns is up*/down*.
    let number: Vec<usize> = channels
        .iter()
        .map(|c| {
            let (s, d) = (rank[c.src.index()], rank[c.dst.index()]);
            if d < s {
                n + s
            } else {
                n - 1 - s
            }
        })
        .collect();

    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); num_channels];
    let mut denied: Vec<(usize, usize)> = Vec::new();
    for (i, follows) in followers.iter().enumerate() {
        for &j in follows {
            if number[i] > number[j] {
                successors[i].push(j);
            } else {
                denied.push((i, j));
            }
        }
    }

    // Greedy re-admission, in a seeded order for candidate diversity: a
    // prohibited turn comes back whenever it cannot close a cycle.
    for i in (1..denied.len()).rev() {
        let j = rng.random_range(0..i + 1);
        denied.swap(i, j);
    }
    let mut visited = vec![0u32; num_channels];
    let mut epoch = 0u32;
    for &(c1, c2) in &denied {
        epoch += 1;
        if !reaches(&successors, c2, c1, &mut visited, epoch) {
            successors[c1].push(c2);
        }
    }

    let successors: Vec<Vec<ChannelId>> = successors
        .into_iter()
        .map(|mut list| {
            list.sort_unstable();
            list.into_iter().map(ChannelId::new).collect()
        })
        .collect();
    let allowed = successors.iter().map(Vec::len).sum();

    // Validation: Dally–Seitz on the candidate's dependency graph, then
    // all-pairs reachability on the surviving relation.
    let cdg = ChannelDependencyGraph::from_successors(successors.clone());
    if !cdg.is_acyclic() {
        return None; // unreachable: re-admission preserves acyclicity
    }
    let routing = SynthesizedRouting::compile(topo, "synth".into(), &successors)?;
    for s in topo.nodes() {
        for d in topo.nodes() {
            if s != d && !routing.source_can_reach(s, d) {
                return None;
            }
        }
    }

    let mut score: u128 = 0;
    for &(s, d) in score_pairs {
        score = score.saturating_add(count_paths(&routing, topo, s, d));
    }
    Some(Candidate {
        successors,
        allowed,
        score,
    })
}

/// `true` if `to` is reachable from `from` along the current permitted
/// successors — i.e. admitting the turn `to -> from`'s inverse would
/// close a cycle. Epoch-stamped visited marks avoid reallocation.
fn reaches(
    successors: &[Vec<usize>],
    from: usize,
    to: usize,
    visited: &mut [u32],
    epoch: u32,
) -> bool {
    let mut stack = vec![from];
    visited[from] = epoch;
    while let Some(c) = stack.pop() {
        if c == to {
            return true;
        }
        for &s in &successors[c] {
            if visited[s] != epoch {
                visited[s] = epoch;
                stack.push(s);
            }
        }
    }
    false
}

/// The source–destination pairs to score: exhaustive up to
/// [`MAX_EXHAUSTIVE_PAIRS`], then a deterministic seeded sample shared
/// by every candidate.
fn scoring_pairs(n: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let all = n * (n - 1);
    if all <= MAX_EXHAUSTIVE_PAIRS {
        let mut pairs = Vec::with_capacity(all);
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    pairs.push((NodeId::new(s), NodeId::new(d)));
                }
            }
        }
        return pairs;
    }
    let mut state = seed ^ 0x5C0E_7A18_5A17_ED00;
    let mut pairs = Vec::with_capacity(MAX_EXHAUSTIVE_PAIRS);
    while pairs.len() < MAX_EXHAUSTIVE_PAIRS {
        let r = split_mix_64(&mut state);
        let s = (r as usize) % n;
        let d = ((r >> 32) as usize) % n;
        if s != d {
            pairs.push((NodeId::new(s), NodeId::new(d)));
        }
    }
    pairs
}

/// FNV-1a over the report body: cheap, stable, and enough to let
/// `scripts/check.sh` assert byte-identical output across runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphSpec;
    use crate::GraphTopology;
    use turnroute_core::check_routing_contract;

    fn opts(seed: u64) -> SynthesisOptions {
        SynthesisOptions {
            seed,
            candidates: 8,
            threads: 0,
        }
    }

    #[test]
    fn full_mesh_synthesis_is_deadlock_free_and_reachable() {
        let topo = GraphTopology::new(&GraphSpec::full_mesh(8)).unwrap();
        let synthesis = synthesize(&topo, &opts(7)).unwrap();
        let r = &synthesis.report;
        assert_eq!(r.viable, r.candidates);
        assert_eq!(r.allowed + r.prohibited.len(), r.turn_pairs);
        assert!(r.score >= 56, "at least the direct path per pair");
        check_routing_contract(&synthesis.routing, &topo);
    }

    #[test]
    fn dragonfly_16_synthesis_succeeds() {
        let topo = GraphTopology::new(&GraphSpec::dragonfly(4, 4)).unwrap();
        let synthesis = synthesize(&topo, &opts(3)).unwrap();
        assert!(synthesis.report.viable > 0);
        check_routing_contract(&synthesis.routing, &topo);
    }

    #[test]
    fn same_seed_is_byte_identical_any_thread_count() {
        let topo = GraphTopology::new(&GraphSpec::ring(8)).unwrap();
        let serial = synthesize(
            &topo,
            &SynthesisOptions {
                seed: 11,
                candidates: 8,
                threads: 1,
            },
        )
        .unwrap();
        let parallel = synthesize(
            &topo,
            &SynthesisOptions {
                seed: 11,
                candidates: 8,
                threads: 8,
            },
        )
        .unwrap();
        assert_eq!(serial.report, parallel.report);
        assert_eq!(serial.report.render(), parallel.report.render());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let topo = GraphTopology::new(&GraphSpec::full_mesh(6)).unwrap();
        let a = synthesize(&topo, &opts(1)).unwrap().report;
        let b = synthesize(&topo, &opts(2)).unwrap().report;
        // Scores may coincide, but the reports carry their seeds, so
        // the fingerprints must differ.
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn works_on_the_papers_mesh_too() {
        let topo = turnroute_topology::Mesh::new_2d(4, 4);
        let synthesis = synthesize(&topo, &opts(5)).unwrap();
        assert!(synthesis.report.viable > 0);
        check_routing_contract(&synthesis.routing, &topo);
    }

    #[test]
    fn zero_candidates_is_an_error() {
        let topo = GraphTopology::new(&GraphSpec::ring(4)).unwrap();
        let err = synthesize(
            &topo,
            &SynthesisOptions {
                seed: 0,
                candidates: 0,
                threads: 1,
            },
        )
        .unwrap_err();
        assert_eq!(err, SynthesisError::NoCandidates);
    }

    #[test]
    fn report_renders_fingerprint_last() {
        let topo = GraphTopology::new(&GraphSpec::fat_tree(4, 2)).unwrap();
        let synthesis = synthesize(&topo, &opts(9)).unwrap();
        let text = synthesis.report.render();
        let last = text.lines().last().unwrap();
        assert!(last.starts_with("fingerprint: "), "got {last}");
        assert_eq!(
            last,
            format!("fingerprint: {:016x}", synthesis.report.fingerprint)
        );
    }
}
