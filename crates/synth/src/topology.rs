//! An arbitrary strongly-connected directed graph behind the
//! [`Topology`] trait.

use crate::graph::{GraphError, GraphSpec};
use std::collections::VecDeque;
use turnroute_topology::{Channel, ChannelId, Coord, DirSet, Direction, NodeId, Topology};

/// The most direction labels any topology can use: a
/// [`DirSet`] holds 32 bits (16 dimensions x 2 signs).
const MAX_DIRECTIONS: usize = 32;

/// An arbitrary directed graph as a routable topology.
///
/// Built from a [`GraphSpec`] (an edge-list file or one of the
/// generators); construction validates the graph and rejects anything
/// the engine cannot route on, with a typed [`GraphError`].
///
/// # Contract notes
///
/// The [`Topology`] trait speaks Cartesian: dimensions, radixes,
/// per-dimension coordinates. A general graph has none of those, so
/// this type bends the contract the way [`HexMesh`] does — every
/// deviation below is relied on by the engine and the synthesis search:
///
/// * **Directions are edge colors, not axes.** Each channel gets a
///   [`Direction`] via a greedy bipartite edge coloring such that no
///   two channels leaving the same node and no two channels entering
///   the same node share a direction. That is exactly what the engine
///   needs: `channel_from(node, dir)` is unique, and an arriving
///   packet's `(node, arrived_dir)` pair identifies its input channel.
///   The coloring uses at most `2 * max_degree - 1` labels; graphs
///   needing more than 32 are rejected
///   ([`GraphError::TooManyDirections`]).
/// * **`num_dims`** is `ceil(colors / 2)` — the number of direction
///   *pairs* the coloring used, not a geometric dimensionality.
/// * **Coordinates are node ids.** `coord_of` returns `num_dims`
///   components with the node id in component 0 and zeros elsewhere;
///   `node_at` reads component 0 back. `radix(0)` is `num_nodes` and
///   `radix(d > 0)` is 1, so coordinate-reflecting traffic patterns
///   (bit-complement, tornado) keep working.
/// * **`wraps` is `false`** and no channel is flagged `wraparound`:
///   the turn model's wraparound machinery is meaningless here.
/// * **`distance`** is true directed shortest-path (all-pairs BFS,
///   precomputed); `minimal_directions` returns every direction whose
///   channel starts a shortest path.
///
/// [`HexMesh`]: turnroute_topology::HexMesh
#[derive(Debug)]
pub struct GraphTopology {
    num_nodes: usize,
    num_dims: usize,
    label: String,
    channels: Vec<Channel>,
    /// `node * 2 * num_dims + dir.index()` -> outgoing channel.
    channel_from: Vec<Option<ChannelId>>,
    /// `node * 2 * num_dims + dir.index()` -> incoming channel.
    channel_into: Vec<Option<ChannelId>>,
    /// `src * num_nodes + dst` -> directed hop distance.
    dist: Vec<usize>,
}

impl GraphTopology {
    /// Builds the topology, validating the spec (see [`GraphSpec::validate`])
    /// and the direction-labelling constraints.
    pub fn new(spec: &GraphSpec) -> Result<GraphTopology, GraphError> {
        spec.validate()?;
        let n = spec.num_nodes;
        assert!(n <= 1 << 16, "node ids must fit a Coord component");

        // Greedy bipartite edge coloring: each edge takes the lowest
        // color unused both among its source's outgoing and its
        // destination's incoming edges. Edges are visited in sorted
        // order, so the labelling is deterministic.
        let mut used_out = vec![0u32; n];
        let mut used_in = vec![0u32; n];
        let mut colored: Vec<(usize, usize, usize)> = Vec::with_capacity(spec.edges.len());
        for &(u, v) in &spec.edges {
            let taken = used_out[u] | used_in[v];
            let color = (!taken).trailing_zeros() as usize;
            if color >= MAX_DIRECTIONS {
                return Err(GraphError::TooManyDirections {
                    limit: MAX_DIRECTIONS,
                });
            }
            used_out[u] |= 1 << color;
            used_in[v] |= 1 << color;
            colored.push((u, v, color));
        }
        let colors = 1 + colored.iter().map(|&(_, _, c)| c).max().unwrap_or(0);
        let num_dims = colors.div_ceil(2);
        let num_dirs = 2 * num_dims;

        // Channel ids follow the trait's convention: ascending source,
        // then ascending direction index (= color).
        colored.sort_unstable_by_key(|&(u, _, c)| (u, c));
        let mut channels = Vec::with_capacity(colored.len());
        let mut channel_from = vec![None; n * num_dirs];
        let mut channel_into = vec![None; n * num_dirs];
        for (id, &(u, v, c)) in colored.iter().enumerate() {
            let dir = Direction::from_index(c);
            channels.push(Channel {
                src: NodeId::new(u),
                dst: NodeId::new(v),
                dir,
                wraparound: false,
            });
            channel_from[u * num_dirs + c] = Some(ChannelId::new(id));
            channel_into[v * num_dirs + c] = Some(ChannelId::new(id));
        }

        // All-pairs directed BFS; strong connectivity (validated above)
        // guarantees every entry is finite.
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &spec.edges {
            adj[u].push(v);
        }
        let mut dist = vec![usize::MAX; n * n];
        for src in 0..n {
            let row = &mut dist[src * n..(src + 1) * n];
            row[src] = 0;
            let mut queue = VecDeque::from([src]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if row[v] == usize::MAX {
                        row[v] = row[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }

        Ok(GraphTopology {
            num_nodes: n,
            num_dims,
            label: spec.label.clone(),
            channels,
            channel_from,
            channel_into,
            dist,
        })
    }

    /// The channel *entering* `node` over `dir`, if any — the inverse
    /// lookup the engine performs implicitly when it stamps a packet's
    /// arrival direction. Unique by construction (see the coloring
    /// contract note).
    pub fn channel_into(&self, node: NodeId, dir: Direction) -> Option<ChannelId> {
        let i = dir.index();
        if i >= 2 * self.num_dims {
            return None;
        }
        self.channel_into[node.index() * 2 * self.num_dims + i]
    }
}

impl Topology for GraphTopology {
    fn num_dims(&self) -> usize {
        self.num_dims
    }

    fn radix(&self, dim: usize) -> usize {
        assert!(dim < self.num_dims, "dimension {dim} out of range");
        if dim == 0 {
            self.num_nodes
        } else {
            1
        }
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn wraps(&self, dim: usize) -> bool {
        assert!(dim < self.num_dims, "dimension {dim} out of range");
        false
    }

    fn coord_of(&self, node: NodeId) -> Coord {
        let mut components = vec![0u16; self.num_dims];
        components[0] = node.index() as u16;
        Coord::new(components)
    }

    fn node_at(&self, coord: &Coord) -> NodeId {
        NodeId::new(coord.get(0) as usize)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.channel_from(node, dir)
            .map(|c| self.channels[c.index()].dst)
    }

    fn channels(&self) -> &[Channel] {
        &self.channels
    }

    fn channel_from(&self, node: NodeId, dir: Direction) -> Option<ChannelId> {
        let i = dir.index();
        if i >= 2 * self.num_dims {
            return None;
        }
        self.channel_from[node.index() * 2 * self.num_dims + i]
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.dist[a.index() * self.num_nodes + b.index()]
    }

    fn minimal_directions(&self, from: NodeId, to: NodeId) -> DirSet {
        let mut set = DirSet::new();
        if from == to {
            return set;
        }
        let d = self.distance(from, to);
        for i in 0..2 * self.num_dims {
            let dir = Direction::from_index(i);
            if let Some(c) = self.channel_from(from, dir) {
                let next = self.channels[c.index()].dst;
                if self.distance(next, to) + 1 == d {
                    set.insert(dir);
                }
            }
        }
        set
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphSpec;

    #[test]
    fn full_mesh_distances_are_all_one() {
        let topo = GraphTopology::new(&GraphSpec::full_mesh(8)).unwrap();
        assert_eq!(topo.num_nodes(), 8);
        assert_eq!(topo.num_channels(), 56);
        for a in topo.nodes() {
            for b in topo.nodes() {
                assert_eq!(topo.distance(a, b), usize::from(a != b));
            }
        }
    }

    #[test]
    fn direction_labels_are_unique_per_endpoint() {
        for spec in [
            GraphSpec::full_mesh(8),
            GraphSpec::ring(7),
            GraphSpec::dragonfly(4, 4),
            GraphSpec::fat_tree(4, 2),
        ] {
            let topo = GraphTopology::new(&spec).unwrap();
            let mut out_seen = std::collections::HashSet::new();
            let mut in_seen = std::collections::HashSet::new();
            for ch in topo.channels() {
                assert!(
                    out_seen.insert((ch.src, ch.dir)),
                    "{}: duplicate (src, dir)",
                    spec.label
                );
                assert!(
                    in_seen.insert((ch.dst, ch.dir)),
                    "{}: duplicate (dst, dir)",
                    spec.label
                );
            }
            assert!(2 * topo.num_dims() <= 32);
        }
    }

    #[test]
    fn lookups_agree_with_the_channel_list() {
        let topo = GraphTopology::new(&GraphSpec::dragonfly(4, 4)).unwrap();
        for (i, ch) in topo.channels().iter().enumerate() {
            let id = ChannelId::new(i);
            assert_eq!(topo.channel_from(ch.src, ch.dir), Some(id));
            assert_eq!(topo.channel_into(ch.dst, ch.dir), Some(id));
            assert_eq!(topo.neighbor(ch.src, ch.dir), Some(ch.dst));
        }
    }

    #[test]
    fn channel_ids_ascend_by_source_then_direction() {
        let topo = GraphTopology::new(&GraphSpec::ring(5)).unwrap();
        let keys: Vec<(usize, usize)> = topo
            .channels()
            .iter()
            .map(|c| (c.src.index(), c.dir.index()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn ring_distances_wrap_both_ways() {
        let topo = GraphTopology::new(&GraphSpec::ring(6)).unwrap();
        assert_eq!(topo.distance(NodeId::new(0), NodeId::new(3)), 3);
        assert_eq!(topo.distance(NodeId::new(0), NodeId::new(5)), 1);
        let dirs = topo.minimal_directions(NodeId::new(0), NodeId::new(3));
        assert_eq!(dirs.len(), 2, "both ways around are shortest");
    }

    #[test]
    fn coords_round_trip_and_radix_covers_patterns() {
        let topo = GraphTopology::new(&GraphSpec::full_mesh(5)).unwrap();
        for node in topo.nodes() {
            let c = topo.coord_of(node);
            assert_eq!(c.num_dims(), topo.num_dims());
            assert_eq!(topo.node_at(&c), node);
        }
        assert_eq!(topo.radix(0), 5);
        for d in 1..topo.num_dims() {
            assert_eq!(topo.radix(d), 1);
            assert!(!topo.wraps(d));
        }
    }

    #[test]
    fn high_degree_graphs_get_a_typed_error() {
        // K_40 needs at least 39 labels, over the 32-slot budget.
        let err = GraphTopology::new(&GraphSpec::full_mesh(40)).unwrap_err();
        assert_eq!(err, GraphError::TooManyDirections { limit: 32 });
    }

    #[test]
    fn label_is_the_spec_string() {
        let topo = GraphTopology::new(&GraphSpec::fat_tree(4, 2)).unwrap();
        assert_eq!(topo.label(), "fattree:4,2");
    }
}
