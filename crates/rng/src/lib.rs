//! A small, dependency-free deterministic random number generator.
//!
//! The simulators need three things from an RNG: determinism given a
//! seed (the whole experiment pipeline is seed-addressed), a tiny API
//! surface (`random_range`, `random_bool`), and identical behavior on
//! every platform and toolchain. This crate supplies exactly that with
//! a xoshiro256++ generator seeded through SplitMix64 — no external
//! crates, so the workspace builds in fully offline environments.
//!
//! The API deliberately mirrors the subset of the `rand` crate the
//! workspace used to depend on, so call sites read the same:
//!
//! ```
//! use turnroute_rng::{Rng, RngCore, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let die = rng.random_range(0..6usize);
//! assert!(die < 6);
//! let coin = rng.random_bool(0.5);
//! let _ = coin;
//! // Works through a trait object, as the pattern/traffic APIs need:
//! let dynrng: &mut dyn RngCore = &mut rng;
//! let x = dynrng.random_range(0.0f64..1.0);
//! assert!((0.0..1.0).contains(&x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The minimal generator interface: a stream of uniform `u64`s.
///
/// Object safe, so simulation components can take `&mut dyn RngCore`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;

    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Multiplies a uniform `u64` into `0..span` without modulo bias worth
/// caring about (Lemire's multiply-shift; the simulators draw from tiny
/// spans, where the bias is far below statistical noise).
#[inline]
fn mul_shift(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                // span == 0 means the full u64 domain; impossible for
                // the integer widths used here (usize/u32 on 64-bit
                // targets never span 2^64 values in practice).
                lo + mul_shift(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience draws, available on every [`RngCore`] — including
/// `dyn RngCore` trait objects.
pub trait Rng: RngCore {
    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform draw from `range` (half-open or inclusive integer
    /// ranges, half-open `f64` ranges).
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: seeds the main generator and stirs hashes into seeds.
///
/// Public because the experiment executor uses it to derive per-cell
/// seeds from a (base seed, cell key) pair.
#[inline]
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
/// seeded through SplitMix64. Fast, tiny state, excellent statistical
/// quality for simulation workloads, and identical output everywhere.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// A generator deterministically derived from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = StdRng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.random_range(0..=4usize);
            assert!(y <= 4);
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2700..3300).contains(&heads), "got {heads}");
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn works_through_a_trait_object() {
        let mut r = StdRng::seed_from_u64(4);
        let dynr: &mut dyn RngCore = &mut r;
        let x = dynr.random_range(0..10usize);
        assert!(x < 10);
        let _ = dynr.random_bool(0.5);
    }

    #[test]
    fn splitmix_is_stable() {
        // Reference values from the published SplitMix64 test vector
        // (seed 1234567).
        let mut s = 1234567u64;
        assert_eq!(split_mix_64(&mut s), 6457827717110365317);
        assert_eq!(split_mix_64(&mut s), 3203168211198807973);
    }

    #[test]
    fn f64_unit_range_never_hits_one() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.random_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
        }
    }
}
