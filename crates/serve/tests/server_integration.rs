//! End-to-end coverage of the job server: submit/poll/fetch round
//! trips, store hits with zero engine cycles, in-flight coalescing,
//! typed 4xx rejections, corruption recovery, and conformance of a
//! server-computed result against the reference oracle.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use turnroute_experiment::json::{self, Value};
use turnroute_experiment::ExperimentSpec;
use turnroute_serve::client;
use turnroute_serve::{ServeOptions, Server, ServerHandle};
use turnroute_sim::report::write_report_json;
use turnroute_sim::{Executor, Logger, SimConfig, TrafficModel};

fn quick() -> SimConfig {
    SimConfig::paper()
        .warmup_cycles(300)
        .measure_cycles(1_500)
        .seed(7)
}

/// A small 2-algorithm, 2-load spec: 4 cells.
fn small_spec() -> ExperimentSpec {
    ExperimentSpec::builder("mesh:6x6", "transpose")
        .algorithm("xy")
        .algorithm("west-first")
        .loads(&[0.02, 0.05])
        .config(quick())
        .build()
        .expect("spec resolves")
}

fn start(tag: &str) -> (ServerHandle, String, PathBuf) {
    let store_dir =
        std::env::temp_dir().join(format!("turnroute-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let handle = Server::start(
        "127.0.0.1:0",
        ServeOptions {
            store_dir: store_dir.clone(),
            threads: 2,
            logger: Logger::disabled(),
        },
    )
    .expect("server starts on an ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr, store_dir)
}

fn parse(body: &[u8]) -> Value {
    json::parse(std::str::from_utf8(body).expect("UTF-8 response"))
        .expect("well-formed JSON response")
}

fn str_field<'a>(doc: &'a Value, key: &str) -> &'a str {
    doc.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string field '{key}'"))
}

fn submit_ok(addr: &str, spec_json: &str) -> (u16, Value) {
    let (status, body) = client::submit(addr, spec_json).expect("submit reaches the server");
    (status, parse(&body))
}

/// Polls a job until it leaves the queued/running states.
fn wait_done(addr: &str, job_id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = client::status(addr, job_id).expect("status reaches the server");
        assert_eq!(status, 200, "status poll failed: {body:?}");
        let doc = parse(&body);
        match str_field(&doc, "status") {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {job_id} never finished");
                std::thread::sleep(Duration::from_millis(20));
            }
            _ => return doc,
        }
    }
}

fn stats(addr: &str) -> Value {
    let (status, body) = client::cache_stats(addr).expect("stats reach the server");
    assert_eq!(status, 200);
    parse(&body)
}

fn stat(doc: &Value, key: &str) -> u64 {
    doc.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing counter '{key}'"))
}

#[test]
fn submit_poll_fetch_round_trip_matches_the_cli_serializer() {
    let (handle, addr, _store) = start("roundtrip");
    let spec = small_spec();

    let (status, doc) = submit_ok(&addr, &spec.to_json());
    assert_eq!(status, 202, "a fresh spec is queued, not served");
    assert_eq!(str_field(&doc, "status"), "queued");
    let job_id = str_field(&doc, "job_id").to_owned();

    let done = wait_done(&addr, &job_id);
    assert_eq!(str_field(&done, "status"), "done");
    assert_eq!(done.get("cells_total").and_then(Value::as_u64), Some(4));
    assert_eq!(done.get("cells_completed").and_then(Value::as_u64), Some(4));

    let (status, body) = client::fetch(&addr, &job_id).expect("fetch reaches the server");
    assert_eq!(status, 200);

    // Byte identity with the CLI path: same spec, same shared
    // serializer, fresh cold executor.
    let mut executor = Executor::new(3);
    let series = spec.run_on(&mut executor).expect("spec runs");
    let mut expected = Vec::new();
    write_report_json(&series, &executor.stats(), &mut expected).unwrap();
    assert_eq!(
        body, expected,
        "server bytes differ from the CLI serializer"
    );

    let report = parse(&body);
    assert_eq!(
        report.get("schema_version").and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(
        report.get("series").and_then(Value::as_arr).map(<[_]>::len),
        Some(2)
    );

    let (status, body) = client::http_request(&addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(str_field(&parse(&body), "status"), "ok");

    handle.shutdown();
}

#[test]
fn identical_resubmission_hits_the_store_with_zero_engine_cycles() {
    let (handle, addr, _store) = start("cachehit");
    let spec_json = small_spec().to_json();

    let (_, doc) = submit_ok(&addr, &spec_json);
    let first_id = str_field(&doc, "job_id").to_owned();
    wait_done(&addr, &first_id);
    let (_, first_body) = client::fetch(&addr, &first_id).unwrap();

    let before = stats(&addr);
    let cells_before = stat(&before, "engine_cells_simulated");
    assert!(cells_before > 0, "the first run must simulate");
    assert_eq!(stat(&before, "store_hits"), 0);

    // Same spec again: answered from the store, born done.
    let (status, doc) = submit_ok(&addr, &spec_json);
    assert_eq!(status, 200, "a stored spec is answered immediately");
    assert_eq!(str_field(&doc, "status"), "done");
    assert_eq!(doc.get("cached").and_then(Value::as_bool), Some(true));
    let second_id = str_field(&doc, "job_id").to_owned();
    assert_ne!(second_id, first_id, "each submission is its own job");

    let (status, second_body) = client::fetch(&addr, &second_id).unwrap();
    assert_eq!(status, 200);
    assert_eq!(second_body, first_body, "store hit changed the bytes");

    let after = stats(&addr);
    assert_eq!(
        stat(&after, "engine_cells_simulated"),
        cells_before,
        "a store hit must cost zero engine cycles"
    );
    assert_eq!(stat(&after, "store_hits"), 1);
    assert_eq!(stat(&after, "entries"), 1);

    handle.shutdown();
}

#[test]
fn concurrent_duplicate_submissions_coalesce_onto_one_job() {
    let (handle, addr, _store) = start("coalesce");

    // A blocker occupies the single runner so the target job stays
    // in-flight while the duplicates arrive.
    let blocker = ExperimentSpec::builder("mesh:6x6", "uniform")
        .algorithm("xy")
        .loads(&[0.05])
        .config(quick().measure_cycles(6_000))
        .build()
        .unwrap();
    let (_, doc) = submit_ok(&addr, &blocker.to_json());
    let blocker_id = str_field(&doc, "job_id").to_owned();

    let target_json = small_spec().to_json();
    let (status, doc) = submit_ok(&addr, &target_json);
    assert_eq!(status, 202);
    let target_id = str_field(&doc, "job_id").to_owned();

    let dupes: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let json = target_json.clone();
            std::thread::spawn(move || submit_ok(&addr, &json))
        })
        .collect();
    for t in dupes {
        let (status, doc) = t.join().expect("duplicate submitter finished");
        assert_eq!(status, 202);
        assert_eq!(
            str_field(&doc, "job_id"),
            target_id,
            "a duplicate submission must coalesce onto the in-flight job"
        );
        assert_eq!(doc.get("coalesced").and_then(Value::as_bool), Some(true));
    }

    wait_done(&addr, &blocker_id);
    wait_done(&addr, &target_id);
    let after = stats(&addr);
    assert_eq!(stat(&after, "coalesced"), 4);
    assert_eq!(stat(&after, "jobs_submitted"), 6);
    // The coalesced job ran once and is fetchable.
    let (status, _) = client::fetch(&addr, &target_id).unwrap();
    assert_eq!(status, 200);

    handle.shutdown();
}

#[test]
fn invalid_submissions_get_typed_4xx_errors() {
    let (handle, addr, _store) = start("errors");

    let kind_of = |body: &[u8]| -> String {
        let doc = parse(body);
        let err = doc.get("error").expect("error envelope");
        str_field(err, "kind").to_owned()
    };

    // Not JSON at all.
    let (status, body) = client::submit(&addr, "{ nope").unwrap();
    assert_eq!(status, 400);
    assert_eq!(kind_of(&body), "malformed");

    // Unknown field.
    let with_unknown = small_spec()
        .to_json()
        .replacen("\"topology\"", "\"typology\"", 1);
    let (status, body) = client::submit(&addr, &with_unknown).unwrap();
    assert_eq!(status, 400);
    assert_eq!(kind_of(&body), "unknown_field");

    // A name that does not resolve.
    let with_bad_name = small_spec().to_json().replacen("xy", "zz", 1);
    let (status, body) = client::submit(&addr, &with_bad_name).unwrap();
    assert_eq!(status, 400);
    assert_eq!(kind_of(&body), "parse");

    // Structural violation: loads out of order.
    let unsorted = small_spec().to_json().replacen("0.02,0.05", "0.05,0.02", 1);
    let (status, body) = client::submit(&addr, &unsorted).unwrap();
    assert_eq!(status, 400);
    assert_eq!(kind_of(&body), "invalid");

    // Unknown job and unknown path.
    let (status, _) = client::status(&addr, "j999").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::http_request(&addr, "GET", "/v2/jobs", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::http_request(&addr, "PUT", "/v1/jobs", None).unwrap();
    assert_eq!(status, 405);

    handle.shutdown();
}

#[test]
fn a_corrupted_store_entry_is_detected_and_recomputed() {
    let (handle, addr, store_dir) = start("corrupt");
    let spec_json = small_spec().to_json();

    let (_, doc) = submit_ok(&addr, &spec_json);
    let first_id = str_field(&doc, "job_id").to_owned();
    wait_done(&addr, &first_id);
    let (_, pristine) = client::fetch(&addr, &first_id).unwrap();
    let cells_once = stat(&stats(&addr), "engine_cells_simulated");

    // Flip one byte of the stored body behind the server's back.
    let entry = std::fs::read_dir(&store_dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "entry"))
        .expect("one store entry exists");
    let mut bytes = std::fs::read(&entry).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&entry, &bytes).unwrap();

    // Resubmitting must detect the damage, recompute, and heal —
    // never serve the flipped bytes.
    let (status, doc) = submit_ok(&addr, &spec_json);
    assert_eq!(status, 202, "a corrupt entry cannot be served as a hit");
    assert_eq!(str_field(&doc, "status"), "queued");
    let second_id = str_field(&doc, "job_id").to_owned();
    wait_done(&addr, &second_id);

    let (status, healed) = client::fetch(&addr, &second_id).unwrap();
    assert_eq!(status, 200);
    assert_eq!(healed, pristine, "recompute must restore identical bytes");

    let after = stats(&addr);
    assert_eq!(stat(&after, "corrupt_detected"), 1);
    assert_eq!(
        stat(&after, "corrupt_healed"),
        1,
        "the recompute must be counted as a heal"
    );
    assert_eq!(
        stat(&after, "engine_cells_simulated"),
        cells_once * 2,
        "the recompute re-ran the full grid"
    );
    // The healed store holds exactly the one entry, and its reported
    // footprint covers at least the pristine body.
    assert_eq!(stat(&after, "entries"), 1);
    assert!(
        stat(&after, "store_bytes") >= pristine.len() as u64,
        "store_bytes must cover the stored report"
    );

    handle.shutdown();
}

#[test]
fn server_results_match_the_reference_oracle() {
    use turnroute_check::oracle::Oracle;
    use turnroute_experiment::cli::{parse_algorithm, parse_pattern, parse_topology};
    use turnroute_sim::cycles_to_usec;
    use turnroute_sim::exec::derive_cell_seed;

    let load = 0.05;
    let config = quick();
    let spec = ExperimentSpec::builder("mesh:6x6", "uniform")
        .algorithm("xy")
        .loads(&[load])
        .config(config.clone())
        .build()
        .unwrap();

    let (handle, addr, _store) = start("oracle");
    let (_, doc) = submit_ok(&addr, &spec.to_json());
    let job_id = str_field(&doc, "job_id").to_owned();
    wait_done(&addr, &job_id);
    let (status, body) = client::fetch(&addr, &job_id).unwrap();
    assert_eq!(status, 200);
    handle.shutdown();

    let report = parse(&body);
    let series = report.get("series").and_then(Value::as_arr).unwrap();
    assert_eq!(series.len(), 1);
    let point = &series[0].get("points").and_then(Value::as_arr).unwrap()[0];
    let delivered = point.get("delivered").and_then(Value::as_u64).unwrap();
    let stranded = point.get("stranded").and_then(Value::as_u64).unwrap();
    let throughput = point
        .get("throughput_flits_per_usec")
        .and_then(Value::as_f64)
        .unwrap();

    // The reference engine, seeded exactly like the executor seeds the
    // cell (by resolved algorithm name).
    let topo = parse_topology("mesh:6x6").unwrap();
    let algo = parse_algorithm("xy", topo.as_ref()).unwrap();
    let pattern = parse_pattern("uniform").unwrap();
    let seed = derive_cell_seed(config.seed, &algo.name(), &pattern.name(), load);
    let oracle = Oracle::new(
        topo.as_ref(),
        algo.as_ref(),
        pattern.as_ref(),
        config.injection_rate(load).seed(seed),
    )
    .run();

    assert_eq!(delivered, oracle.total_delivered);
    assert_eq!(stranded, oracle.stranded_packets);
    let expected =
        oracle.flits_delivered as f64 / cycles_to_usec(oracle.window_end - oracle.window_start);
    assert!(
        (throughput - expected).abs() <= expected.abs() * 1e-9,
        "server throughput {throughput} diverges from the oracle's {expected}"
    );
}

/// The traffic axes travel the wire intact: an MMPP spec with a
/// trace-driven destination file submitted to the server produces the
/// exact bytes the CLI serializer writes for the same spec run locally.
/// Because all injection randomness is drawn from per-node nested
/// streams, this holds regardless of the server's worker count.
#[test]
fn mmpp_and_trace_jobs_match_the_cli_serializer_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("turnroute-serve-mmpp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("fixture dir");
    let trace = dir.join("pairs.trace");
    std::fs::write(
        &trace,
        "# serve fixture\n0 35 3\n1 34\n7 28 2\n12 23\n30 5 4\n",
    )
    .unwrap();

    let bursty = quick().traffic(TrafficModel::Mmpp {
        burst_cycles: 96.0,
        idle_cycles: 288.0,
    });
    let specs = [
        ExperimentSpec::builder("mesh:6x6", "transpose")
            .algorithm("xy")
            .algorithm("west-first")
            .loads(&[0.02, 0.05])
            .config(bursty.clone())
            .build()
            .expect("mmpp spec resolves"),
        ExperimentSpec::builder("mesh:6x6", format!("trace:{}", trace.display()))
            .algorithm("west-first")
            .loads(&[0.05])
            .config(bursty)
            .build()
            .expect("trace spec resolves"),
    ];

    let (handle, addr, _store) = start("mmpp");
    for spec in &specs {
        let (status, doc) = submit_ok(&addr, &spec.to_json());
        assert_eq!(status, 202);
        let job_id = str_field(&doc, "job_id").to_owned();
        let done = wait_done(&addr, &job_id);
        assert_eq!(str_field(&done, "status"), "done");
        let (status, body) = client::fetch(&addr, &job_id).expect("fetch reaches the server");
        assert_eq!(status, 200);

        let mut executor = Executor::new(3);
        let series = spec.run_on(&mut executor).expect("spec runs locally");
        let mut expected = Vec::new();
        write_report_json(&series, &executor.stats(), &mut expected).unwrap();
        assert_eq!(
            body, expected,
            "server bytes differ from the CLI serializer for an MMPP job"
        );
    }
    handle.shutdown();
}
