//! The job server: an HTTP/JSON API over the deterministic executor.
//!
//! # Job lifecycle
//!
//! `POST /v1/jobs` validates the submitted spec at the boundary
//! (typed [`SpecError`] → 4xx), computes its content key, and then:
//!
//! * **store hit** — the key is already on disk: the job is born
//!   `done` and `cached`, and `/result` serves the stored bytes with
//!   zero engine cycles;
//! * **coalesce** — an identical spec is already queued or running:
//!   the submission returns that job's id instead of enqueueing a
//!   duplicate;
//! * **enqueue** — otherwise the job enters the queue and a single
//!   background runner executes it on a fresh [`Executor`] wired to an
//!   [`ExecProgress`] surface, so `GET /v1/jobs/{id}` reports live
//!   per-cell progress and `DELETE /v1/jobs/{id}` cancels.
//!
//! # Cache keying
//!
//! The store key is [`ExperimentSpec::fingerprint`] (which already
//! folds in fault-plan identity and the full engine configuration)
//! suffixed with [`REPORT_SCHEMA_VERSION`], so bumping the report
//! schema can never serve stale-schema bytes. Results are serialized
//! once, through the same [`report::write_report_json`] the CLI uses —
//! a server result is byte-identical to the CLI's `--format json` for
//! the same experiment.
//!
//! # Observability
//!
//! The server threads a [`Logger`] through every layer: each
//! connection gets an access-log `request` event (method, path,
//! status, bytes, duration, peer) under a fresh `r<N>` span, and each
//! job's lifecycle (`job_submitted` → `job_queued` → `job_running` →
//! per-cell `cell` debug events from the executor → `job_done` /
//! `job_failed` / `job_cancelled`) shares the job id as its span, so
//! one `grep '"span":"j3"'` reconstructs a job end to end. Store
//! outcomes emit `store_hit` / `store_miss` / `store_corrupt` /
//! `store_write` events. `GET /v1/metrics` exposes the same signals as
//! Prometheus text: request counts by route and status, request/job
//! duration histograms, queue depth and in-flight gauges, store
//! hit/miss/heal counters, and engine cells simulated. None of this
//! feeds back into results: report bytes are identical with logging
//! enabled or disabled.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::http::{read_request, write_response, Request, Response};
use crate::metrics::{DurationHistogram, Expo, LabeledCounter};
use crate::store::{ResultStore, StoreLookup};
use turnroute_experiment::json::escape;
use turnroute_experiment::{ExperimentSpec, SpecError};
use turnroute_sim::report::{self, REPORT_SCHEMA_VERSION};
use turnroute_sim::{ExecProgress, Executor, Level, Logger};

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Directory of the content-addressed result store.
    pub store_dir: PathBuf,
    /// Worker threads per job's executor.
    pub threads: usize,
    /// Structured-log sink; [`Logger::disabled`] for none.
    pub logger: Logger,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

struct Job {
    key: String,
    spec: ExperimentSpec,
    status: JobStatus,
    progress: Arc<ExecProgress>,
    /// `true` if the submission was answered straight from the store.
    cached: bool,
    /// `true` if this run replaces a corrupt store entry.
    heal: bool,
    error: Option<String>,
}

#[derive(Default)]
struct Inner {
    jobs: HashMap<String, Job>,
    /// Content key → job id, for coalescing in-flight duplicates.
    inflight: HashMap<String, String>,
    queue: VecDeque<String>,
    next_id: u64,
    shutdown: bool,
}

/// Service counters, exposed at `GET /v1/cache/stats` and
/// `GET /v1/metrics`. All monotonic over the server's lifetime.
#[derive(Default)]
struct Counters {
    jobs_submitted: AtomicU64,
    coalesced: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    corrupt_detected: AtomicU64,
    /// Corrupt entries overwritten by a successful recompute.
    corrupt_healed: AtomicU64,
    /// Cells the engine actually simulated (speculation included);
    /// stays flat across store hits — the acceptance proof that cached
    /// submissions cost zero engine cycles.
    engine_cells_simulated: AtomicU64,
}

/// Scrape-side aggregates that are histograms or labeled families
/// rather than scalar atomics.
#[derive(Default)]
struct ServiceMetrics {
    /// Requests by (route, status-code) label pair.
    http_requests: LabeledCounter,
    /// End-to-end request handling time.
    http_duration: DurationHistogram,
    /// Queued→terminal runtime of executed (non-cached) jobs.
    job_duration: DurationHistogram,
}

struct State {
    store: ResultStore,
    threads: usize,
    inner: Mutex<Inner>,
    wake_runner: Condvar,
    counters: Counters,
    metrics: ServiceMetrics,
    log: Logger,
}

/// The job server. Construct with [`Server::start`].
#[derive(Debug)]
pub struct Server;

/// A running server: its bound address plus the shutdown handle.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    runner_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), opens
    /// the result store, and starts the accept loop and the job
    /// runner.
    pub fn start(addr: &str, options: ServeOptions) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = Arc::new(State {
            store: ResultStore::open(&options.store_dir)?,
            threads: options.threads.max(1),
            inner: Mutex::new(Inner::default()),
            wake_runner: Condvar::new(),
            counters: Counters::default(),
            metrics: ServiceMetrics::default(),
            log: options.logger,
        });
        state
            .log
            .event(Level::Info, "server_started")
            .str("addr", &local.to_string())
            .u64("threads", state.threads as u64)
            .str("store_dir", &options.store_dir.display().to_string())
            .emit();
        let stop = Arc::new(AtomicBool::new(false));

        let accept_state = state.clone();
        let accept_stop = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let state = accept_state.clone();
                std::thread::spawn(move || handle_connection(stream, &state));
            }
        });

        let runner_state = state.clone();
        let runner_thread = std::thread::spawn(move || run_jobs(&runner_state));

        Ok(ServerHandle {
            addr: local,
            state,
            stop,
            accept_thread: Some(accept_thread),
            runner_thread: Some(runner_thread),
        })
    }
}

impl ServerHandle {
    /// The address the server actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, cancels any running job, drains the runner,
    /// and joins both threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        {
            let mut inner = self.state.inner.lock().expect("server poisoned");
            inner.shutdown = true;
            for job in inner.jobs.values() {
                if job.status == JobStatus::Running {
                    job.progress.cancel();
                }
            }
            self.state.wake_runner.notify_all();
        }
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.runner_thread.take() {
            let _ = t.join();
        }
        self.state
            .log
            .event(Level::Info, "server_stopped")
            .str("addr", &self.addr.to_string())
            .emit();
    }
}

/// The single job runner: pops queued jobs and executes them one at a
/// time (each job parallelizes internally across executor threads).
fn run_jobs(state: &State) {
    loop {
        let (id, spec, key, progress, heal) = {
            let mut inner = state.inner.lock().expect("server poisoned");
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    let job = inner.jobs.get_mut(&id).expect("queued jobs exist");
                    if job.status != JobStatus::Queued {
                        continue; // cancelled while waiting
                    }
                    job.status = JobStatus::Running;
                    break (
                        id,
                        job.spec.clone(),
                        job.key.clone(),
                        job.progress.clone(),
                        job.heal,
                    );
                }
                if inner.shutdown {
                    return;
                }
                inner = state.wake_runner.wait(inner).expect("server poisoned");
            }
        };

        state
            .log
            .event(Level::Info, "job_running")
            .span(&id)
            .u64("cells_total", spec.num_cells() as u64)
            .u64("threads", state.threads as u64)
            .emit();
        let started = Instant::now();

        // Fresh executor, fresh in-memory cell cache: the emitted
        // counters — which go into the report — are exactly what a
        // cold CLI run produces, so stored bytes match the CLI's.
        let mut executor = Executor::new(state.threads)
            .with_progress(progress.clone())
            .with_oplog(state.log.clone(), id.clone());
        let outcome = spec.run_on(&mut executor);
        let cells_simulated = executor.stats().simulated as u64;
        state
            .counters
            .engine_cells_simulated
            .fetch_add(cells_simulated, Ordering::AcqRel);

        let (status, error) = match outcome {
            _ if progress.is_cancelled() => (JobStatus::Cancelled, None),
            Err(e) => (JobStatus::Failed, Some(e.to_string())),
            Ok(series) => {
                let mut body = Vec::new();
                report::write_report_json(&series, &executor.stats(), &mut body)
                    .expect("writing to a Vec cannot fail");
                match state.store.put(&key, &body) {
                    Ok(()) => {
                        if heal {
                            state.counters.corrupt_healed.fetch_add(1, Ordering::AcqRel);
                        }
                        state
                            .log
                            .event(Level::Info, "store_write")
                            .span(&id)
                            .str("key", &key)
                            .u64("bytes", body.len() as u64)
                            .bool("heal", heal)
                            .emit();
                        (JobStatus::Done, None)
                    }
                    Err(e) => (JobStatus::Failed, Some(format!("store write failed: {e}"))),
                }
            }
        };

        let wall_secs = started.elapsed().as_secs_f64();
        state
            .metrics
            .job_duration
            .record_micros(started.elapsed().as_micros() as u64);
        let (event, counter) = match status {
            JobStatus::Done => ("job_done", &state.counters.jobs_done),
            JobStatus::Cancelled => ("job_cancelled", &state.counters.jobs_cancelled),
            _ => ("job_failed", &state.counters.jobs_failed),
        };
        counter.fetch_add(1, Ordering::AcqRel);
        let mut ev = state
            .log
            .event(
                if status == JobStatus::Failed {
                    Level::Error
                } else {
                    Level::Info
                },
                event,
            )
            .span(&id)
            .u64("cells_simulated", cells_simulated)
            .f64("wall_secs", wall_secs);
        if let Some(e) = &error {
            ev = ev.str("error", e);
        }
        ev.emit();

        let mut inner = state.inner.lock().expect("server poisoned");
        inner.inflight.remove(&key);
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.status = status;
            job.error = error;
        }
    }
}

/// The bounded route label set for the request counter — never the
/// raw path, so label cardinality cannot grow with job ids or typos.
fn route_label(method: &str, path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        (_, ["v1", "healthz"]) => "healthz",
        (_, ["v1", "cache", "stats"]) => "cache_stats",
        (_, ["v1", "metrics"]) => "metrics",
        ("POST", ["v1", "jobs"]) => "jobs_submit",
        ("GET", ["v1", "jobs", _, "result"]) => "job_result",
        ("GET", ["v1", "jobs", _]) => "job_status",
        ("DELETE", ["v1", "jobs", _]) => "job_cancel",
        _ => "other",
    }
}

/// The error `kind` for boundary failures, matching what `route`
/// produces for the same status elsewhere in the API.
fn kind_for_status(status: u16) -> &'static str {
    match status {
        400 => "malformed",
        413 => "too_large",
        _ => "http",
    }
}

fn handle_connection(mut stream: TcpStream, state: &State) {
    let started = Instant::now();
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_owned(), |a| a.to_string());
    let span = state.log.next_span("r");
    let request = match read_request(&mut stream) {
        Ok(Ok(request)) => request,
        Ok(Err(e)) => {
            // A malformed request is a client bug worth surfacing, not
            // something to swallow: log it and answer with the same
            // typed 4xx shape every other API error uses.
            state
                .log
                .event(Level::Warn, "bad_request")
                .span(&span)
                .str("peer", &peer)
                .u64("status", u64::from(e.status))
                .str("reason", &e.message)
                .emit();
            state
                .metrics
                .http_requests
                .increment("malformed", &e.status.to_string());
            let response = Response::error(e.status, kind_for_status(e.status), &e.message);
            if let Err(werr) = write_response(&mut stream, &response) {
                state
                    .log
                    .event(Level::Warn, "io_error")
                    .span(&span)
                    .str("peer", &peer)
                    .str("error", &werr.to_string())
                    .emit();
            }
            return;
        }
        Err(e) => {
            state
                .log
                .event(Level::Warn, "io_error")
                .span(&span)
                .str("peer", &peer)
                .str("error", &e.to_string())
                .emit();
            return;
        }
    };
    let response = route(&request, state, &span);
    let route = route_label(&request.method, &request.path);
    state
        .metrics
        .http_requests
        .increment(route, &response.status.to_string());
    let elapsed = started.elapsed();
    state
        .metrics
        .http_duration
        .record_micros(elapsed.as_micros() as u64);
    state
        .log
        .event(Level::Info, "request")
        .span(&span)
        .str("peer", &peer)
        .str("method", &request.method)
        .str("path", &request.path)
        .u64("status", u64::from(response.status))
        .u64("bytes", response.body.len() as u64)
        .f64("duration_ms", elapsed.as_secs_f64() * 1e3)
        .emit();
    if let Err(werr) = write_response(&mut stream, &response) {
        state
            .log
            .event(Level::Warn, "io_error")
            .span(&span)
            .str("peer", &peer)
            .str("error", &werr.to_string())
            .emit();
    }
}

fn route(request: &Request, state: &State, span: &str) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => healthz(state),
        ("GET", ["v1", "cache", "stats"]) => cache_stats(state),
        ("GET", ["v1", "metrics"]) => metrics_page(state),
        ("POST", ["v1", "jobs"]) => submit(request, state, span),
        ("GET", ["v1", "jobs", id]) => job_status(id, state),
        ("GET", ["v1", "jobs", id, "result"]) => job_result(id, state),
        ("DELETE", ["v1", "jobs", id]) => cancel_job(id, state),
        (_, ["v1", "jobs", ..])
        | (_, ["v1", "healthz"])
        | (_, ["v1", "cache", "stats"])
        | (_, ["v1", "metrics"]) => {
            Response::error(405, "method_not_allowed", "wrong method for this path")
        }
        _ => Response::error(404, "not_found", "unknown path"),
    }
}

fn healthz(state: &State) -> Response {
    let inner = state.inner.lock().expect("server poisoned");
    let body = format!(
        "{{\"status\":\"ok\",\"jobs\":{},\"queued\":{}}}\n",
        inner.jobs.len(),
        inner.queue.len()
    );
    Response::json(200, body.into_bytes())
}

fn cache_stats(state: &State) -> Response {
    let entries = state.store.len().unwrap_or(0);
    let store_bytes = state.store.total_bytes().unwrap_or(0);
    let c = &state.counters;
    let body = format!(
        "{{\"entries\":{},\"jobs_submitted\":{},\"coalesced\":{},\"store_hits\":{},\
         \"store_misses\":{},\"corrupt_detected\":{},\"engine_cells_simulated\":{},\
         \"store_bytes\":{},\"corrupt_healed\":{}}}\n",
        entries,
        c.jobs_submitted.load(Ordering::Acquire),
        c.coalesced.load(Ordering::Acquire),
        c.store_hits.load(Ordering::Acquire),
        c.store_misses.load(Ordering::Acquire),
        c.corrupt_detected.load(Ordering::Acquire),
        c.engine_cells_simulated.load(Ordering::Acquire),
        store_bytes,
        c.corrupt_healed.load(Ordering::Acquire),
    );
    Response::json(200, body.into_bytes())
}

/// Renders the full Prometheus exposition for `GET /v1/metrics`.
fn metrics_page(state: &State) -> Response {
    let c = &state.counters;
    let (queue_depth, jobs_running) = {
        let inner = state.inner.lock().expect("server poisoned");
        let running = inner
            .jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .count();
        (inner.queue.len() as u64, running as u64)
    };
    let mut e = Expo::new();

    e.family(
        "turnroute_http_requests_total",
        "HTTP requests handled, by route and status code.",
        "counter",
    );
    for ((route, code), count) in state.metrics.http_requests.snapshot() {
        e.sample(
            "turnroute_http_requests_total",
            &[("route", &route), ("code", &code)],
            count,
        );
    }
    e.duration_histogram(
        "turnroute_http_request_duration_seconds",
        "End-to-end request handling time.",
        &state.metrics.http_duration.snapshot(),
    );

    e.family(
        "turnroute_jobs_submitted_total",
        "Job submissions accepted (cached and coalesced included).",
        "counter",
    );
    e.sample(
        "turnroute_jobs_submitted_total",
        &[],
        c.jobs_submitted.load(Ordering::Acquire),
    );
    e.family(
        "turnroute_jobs_coalesced_total",
        "Submissions coalesced onto an identical in-flight job.",
        "counter",
    );
    e.sample(
        "turnroute_jobs_coalesced_total",
        &[],
        c.coalesced.load(Ordering::Acquire),
    );
    e.family(
        "turnroute_jobs_total",
        "Executed jobs reaching a terminal state, by outcome.",
        "counter",
    );
    for (status, counter) in [
        ("done", &c.jobs_done),
        ("failed", &c.jobs_failed),
        ("cancelled", &c.jobs_cancelled),
    ] {
        e.sample(
            "turnroute_jobs_total",
            &[("status", status)],
            counter.load(Ordering::Acquire),
        );
    }
    e.duration_histogram(
        "turnroute_job_duration_seconds",
        "Wall time of executed (non-cached) jobs.",
        &state.metrics.job_duration.snapshot(),
    );

    e.family(
        "turnroute_queue_depth",
        "Jobs waiting in the run queue.",
        "gauge",
    );
    e.sample("turnroute_queue_depth", &[], queue_depth);
    e.family(
        "turnroute_jobs_running",
        "Jobs currently executing.",
        "gauge",
    );
    e.sample("turnroute_jobs_running", &[], jobs_running);

    e.family(
        "turnroute_store_hits_total",
        "Submissions answered straight from the result store.",
        "counter",
    );
    e.sample(
        "turnroute_store_hits_total",
        &[],
        c.store_hits.load(Ordering::Acquire),
    );
    e.family(
        "turnroute_store_misses_total",
        "Submissions that required engine execution.",
        "counter",
    );
    e.sample(
        "turnroute_store_misses_total",
        &[],
        c.store_misses.load(Ordering::Acquire),
    );
    e.family(
        "turnroute_store_corrupt_detected_total",
        "Store entries that failed fingerprint verification.",
        "counter",
    );
    e.sample(
        "turnroute_store_corrupt_detected_total",
        &[],
        c.corrupt_detected.load(Ordering::Acquire),
    );
    e.family(
        "turnroute_store_corrupt_healed_total",
        "Corrupt entries overwritten by a successful recompute.",
        "counter",
    );
    e.sample(
        "turnroute_store_corrupt_healed_total",
        &[],
        c.corrupt_healed.load(Ordering::Acquire),
    );
    e.family(
        "turnroute_store_entries",
        "Result entries currently on disk.",
        "gauge",
    );
    e.sample(
        "turnroute_store_entries",
        &[],
        state.store.len().unwrap_or(0),
    );
    e.family(
        "turnroute_store_bytes",
        "On-disk footprint of the result store, in bytes.",
        "gauge",
    );
    e.sample(
        "turnroute_store_bytes",
        &[],
        state.store.total_bytes().unwrap_or(0),
    );

    e.family(
        "turnroute_engine_cells_simulated_total",
        "Sweep cells the engine actually simulated (flat across cache hits).",
        "counter",
    );
    e.sample(
        "turnroute_engine_cells_simulated_total",
        &[],
        c.engine_cells_simulated.load(Ordering::Acquire),
    );

    Response::metrics_text(200, e.finish().into_bytes())
}

/// The content-addressed store key for a spec under the current report
/// schema.
fn content_key(spec: &ExperimentSpec) -> String {
    format!("{}-r{}", spec.fingerprint(), REPORT_SCHEMA_VERSION)
}

fn spec_error_response(e: &SpecError) -> Response {
    Response::error(400, e.kind(), &e.to_string())
}

fn submit(request: &Request, state: &State, span: &str) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "malformed", "the body is not UTF-8");
    };
    let spec = match ExperimentSpec::from_json(text) {
        Ok(spec) => spec,
        Err(e) => return spec_error_response(&e),
    };
    let key = content_key(&spec);
    state.counters.jobs_submitted.fetch_add(1, Ordering::AcqRel);

    let mut inner = state.inner.lock().expect("server poisoned");

    // Coalesce onto an identical queued/running job first: no store
    // read, no second enqueue.
    if let Some(existing) = inner.inflight.get(&key) {
        let id = existing.clone();
        let status = inner.jobs[&id].status;
        state.counters.coalesced.fetch_add(1, Ordering::AcqRel);
        state
            .log
            .event(Level::Info, "job_coalesced")
            .span(&id)
            .str("request", span)
            .str("key", &key)
            .emit();
        return Response::json(
            202,
            format!(
                "{{\"job_id\":{},\"span\":{},\"status\":\"{}\",\"cached\":false,\"coalesced\":true}}\n",
                escape(&id),
                escape(&id),
                status.as_str()
            )
            .into_bytes(),
        );
    }

    let lookup = state.store.get(&key);
    let (served_from_store, heal) = match lookup {
        StoreLookup::Hit(_) => {
            state.counters.store_hits.fetch_add(1, Ordering::AcqRel);
            (true, false)
        }
        StoreLookup::Corrupt => {
            // Detected by the entry fingerprint: recompute and heal.
            state
                .counters
                .corrupt_detected
                .fetch_add(1, Ordering::AcqRel);
            state.counters.store_misses.fetch_add(1, Ordering::AcqRel);
            (false, true)
        }
        StoreLookup::Miss => {
            state.counters.store_misses.fetch_add(1, Ordering::AcqRel);
            (false, false)
        }
    };

    inner.next_id += 1;
    let id = format!("j{}", inner.next_id);
    let store_event = match (served_from_store, heal) {
        (true, _) => "store_hit",
        (false, true) => "store_corrupt",
        (false, false) => "store_miss",
    };
    state
        .log
        .event(Level::Info, "job_submitted")
        .span(&id)
        .str("request", span)
        .str("key", &key)
        .u64("cells_total", spec.num_cells() as u64)
        .emit();
    state
        .log
        .event(if heal { Level::Warn } else { Level::Info }, store_event)
        .span(&id)
        .str("key", &key)
        .emit();
    let job = Job {
        key: key.clone(),
        spec,
        status: if served_from_store {
            JobStatus::Done
        } else {
            JobStatus::Queued
        },
        progress: ExecProgress::new(),
        cached: served_from_store,
        heal,
        error: None,
    };
    inner.jobs.insert(id.clone(), job);
    if served_from_store {
        state
            .log
            .event(Level::Info, "job_done")
            .span(&id)
            .bool("cached", true)
            .u64("cells_simulated", 0)
            .emit();
        return Response::json(
            200,
            format!(
                "{{\"job_id\":{},\"span\":{},\"status\":\"done\",\"cached\":true}}\n",
                escape(&id),
                escape(&id)
            )
            .into_bytes(),
        );
    }
    inner.inflight.insert(key, id.clone());
    inner.queue.push_back(id.clone());
    state
        .log
        .event(Level::Info, "job_queued")
        .span(&id)
        .u64("queue_depth", inner.queue.len() as u64)
        .emit();
    state.wake_runner.notify_all();
    Response::json(
        202,
        format!(
            "{{\"job_id\":{},\"span\":{},\"status\":\"queued\",\"cached\":false}}\n",
            escape(&id),
            escape(&id)
        )
        .into_bytes(),
    )
}

fn status_doc(id: &str, job: &Job) -> String {
    let total = job.spec.num_cells() as u64;
    let completed = if job.status == JobStatus::Done {
        total
    } else {
        job.progress.completed().min(total)
    };
    let error = job
        .error
        .as_deref()
        .map_or(String::new(), |e| format!(",\"error\":{}", escape(e)));
    format!(
        "{{\"job_id\":{},\"span\":{},\"status\":\"{}\",\"cached\":{},\
         \"cells_total\":{total},\"cells_completed\":{completed}{error}}}\n",
        escape(id),
        escape(id),
        job.status.as_str(),
        job.cached,
    )
}

fn job_status(id: &str, state: &State) -> Response {
    let inner = state.inner.lock().expect("server poisoned");
    match inner.jobs.get(id) {
        Some(job) => Response::json(200, status_doc(id, job).into_bytes()),
        None => Response::error(404, "not_found", "no such job"),
    }
}

fn job_result(id: &str, state: &State) -> Response {
    let (key, status) = {
        let inner = state.inner.lock().expect("server poisoned");
        match inner.jobs.get(id) {
            Some(job) => (job.key.clone(), job.status),
            None => return Response::error(404, "not_found", "no such job"),
        }
    };
    match status {
        JobStatus::Done => match state.store.get(&key) {
            StoreLookup::Hit(body) => Response::json(200, body),
            StoreLookup::Miss | StoreLookup::Corrupt => {
                state
                    .counters
                    .corrupt_detected
                    .fetch_add(1, Ordering::AcqRel);
                state
                    .log
                    .event(Level::Warn, "store_corrupt")
                    .span(id)
                    .str("key", &key)
                    .emit();
                Response::error(
                    410,
                    "corrupt",
                    "the stored result failed verification; resubmit to recompute",
                )
            }
        },
        JobStatus::Failed => Response::error(409, "failed", "the job failed; see its status"),
        JobStatus::Cancelled => Response::error(409, "cancelled", "the job was cancelled"),
        JobStatus::Queued | JobStatus::Running => {
            Response::error(409, "not_done", "the job has not finished yet")
        }
    }
}

fn cancel_job(id: &str, state: &State) -> Response {
    let mut inner = state.inner.lock().expect("server poisoned");
    let Some(job) = inner.jobs.get_mut(id) else {
        return Response::error(404, "not_found", "no such job");
    };
    match job.status {
        JobStatus::Queued => {
            job.status = JobStatus::Cancelled;
            job.progress.cancel();
            let key = job.key.clone();
            inner.inflight.remove(&key);
            state.counters.jobs_cancelled.fetch_add(1, Ordering::AcqRel);
            state
                .log
                .event(Level::Info, "job_cancelled")
                .span(id)
                .bool("while_queued", true)
                .emit();
            let doc = status_doc(id, &inner.jobs[id]);
            Response::json(200, doc.into_bytes())
        }
        JobStatus::Running => {
            job.progress.cancel();
            Response::json(202, status_doc(id, job).into_bytes())
        }
        // Terminal states: cancellation is a no-op, report as-is.
        JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled => {
            Response::json(200, status_doc(id, job).into_bytes())
        }
    }
}
