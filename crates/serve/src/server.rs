//! The job server: an HTTP/JSON API over the deterministic executor.
//!
//! # Job lifecycle
//!
//! `POST /v1/jobs` validates the submitted spec at the boundary
//! (typed [`SpecError`] → 4xx), computes its content key, and then:
//!
//! * **store hit** — the key is already on disk: the job is born
//!   `done` and `cached`, and `/result` serves the stored bytes with
//!   zero engine cycles;
//! * **coalesce** — an identical spec is already queued or running:
//!   the submission returns that job's id instead of enqueueing a
//!   duplicate;
//! * **enqueue** — otherwise the job enters the queue and a single
//!   background runner executes it on a fresh [`Executor`] wired to an
//!   [`ExecProgress`] surface, so `GET /v1/jobs/{id}` reports live
//!   per-cell progress and `DELETE /v1/jobs/{id}` cancels.
//!
//! # Cache keying
//!
//! The store key is [`ExperimentSpec::fingerprint`] (which already
//! folds in fault-plan identity and the full engine configuration)
//! suffixed with [`REPORT_SCHEMA_VERSION`], so bumping the report
//! schema can never serve stale-schema bytes. Results are serialized
//! once, through the same [`report::write_report_json`] the CLI uses —
//! a server result is byte-identical to the CLI's `--format json` for
//! the same experiment.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::http::{read_request, write_response, Request, Response};
use crate::store::{ResultStore, StoreLookup};
use turnroute_experiment::json::escape;
use turnroute_experiment::{ExperimentSpec, SpecError};
use turnroute_sim::report::{self, REPORT_SCHEMA_VERSION};
use turnroute_sim::{ExecProgress, Executor};

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Directory of the content-addressed result store.
    pub store_dir: PathBuf,
    /// Worker threads per job's executor.
    pub threads: usize,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

struct Job {
    key: String,
    spec: ExperimentSpec,
    status: JobStatus,
    progress: Arc<ExecProgress>,
    /// `true` if the submission was answered straight from the store.
    cached: bool,
    error: Option<String>,
}

#[derive(Default)]
struct Inner {
    jobs: HashMap<String, Job>,
    /// Content key → job id, for coalescing in-flight duplicates.
    inflight: HashMap<String, String>,
    queue: VecDeque<String>,
    next_id: u64,
    shutdown: bool,
}

/// Service counters, exposed at `GET /v1/cache/stats`. All monotonic
/// over the server's lifetime.
#[derive(Default)]
struct Counters {
    jobs_submitted: AtomicU64,
    coalesced: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    corrupt_detected: AtomicU64,
    /// Cells the engine actually simulated (speculation included);
    /// stays flat across store hits — the acceptance proof that cached
    /// submissions cost zero engine cycles.
    engine_cells_simulated: AtomicU64,
}

struct State {
    store: ResultStore,
    threads: usize,
    inner: Mutex<Inner>,
    wake_runner: Condvar,
    counters: Counters,
}

/// The job server. Construct with [`Server::start`].
#[derive(Debug)]
pub struct Server;

/// A running server: its bound address plus the shutdown handle.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    runner_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), opens
    /// the result store, and starts the accept loop and the job
    /// runner.
    pub fn start(addr: &str, options: ServeOptions) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = Arc::new(State {
            store: ResultStore::open(&options.store_dir)?,
            threads: options.threads.max(1),
            inner: Mutex::new(Inner::default()),
            wake_runner: Condvar::new(),
            counters: Counters::default(),
        });
        let stop = Arc::new(AtomicBool::new(false));

        let accept_state = state.clone();
        let accept_stop = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let state = accept_state.clone();
                std::thread::spawn(move || handle_connection(stream, &state));
            }
        });

        let runner_state = state.clone();
        let runner_thread = std::thread::spawn(move || run_jobs(&runner_state));

        Ok(ServerHandle {
            addr: local,
            state,
            stop,
            accept_thread: Some(accept_thread),
            runner_thread: Some(runner_thread),
        })
    }
}

impl ServerHandle {
    /// The address the server actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, cancels any running job, drains the runner,
    /// and joins both threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        {
            let mut inner = self.state.inner.lock().expect("server poisoned");
            inner.shutdown = true;
            for job in inner.jobs.values() {
                if job.status == JobStatus::Running {
                    job.progress.cancel();
                }
            }
            self.state.wake_runner.notify_all();
        }
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.runner_thread.take() {
            let _ = t.join();
        }
    }
}

/// The single job runner: pops queued jobs and executes them one at a
/// time (each job parallelizes internally across executor threads).
fn run_jobs(state: &State) {
    loop {
        let (id, spec, key, progress) = {
            let mut inner = state.inner.lock().expect("server poisoned");
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    let job = inner.jobs.get_mut(&id).expect("queued jobs exist");
                    if job.status != JobStatus::Queued {
                        continue; // cancelled while waiting
                    }
                    job.status = JobStatus::Running;
                    break (id, job.spec.clone(), job.key.clone(), job.progress.clone());
                }
                if inner.shutdown {
                    return;
                }
                inner = state.wake_runner.wait(inner).expect("server poisoned");
            }
        };

        // Fresh executor, fresh in-memory cell cache: the emitted
        // counters — which go into the report — are exactly what a
        // cold CLI run produces, so stored bytes match the CLI's.
        let mut executor = Executor::new(state.threads).with_progress(progress.clone());
        let outcome = spec.run_on(&mut executor);
        state
            .counters
            .engine_cells_simulated
            .fetch_add(executor.stats().simulated as u64, Ordering::AcqRel);

        let (status, error) = match outcome {
            _ if progress.is_cancelled() => (JobStatus::Cancelled, None),
            Err(e) => (JobStatus::Failed, Some(e.to_string())),
            Ok(series) => {
                let mut body = Vec::new();
                report::write_report_json(&series, &executor.stats(), &mut body)
                    .expect("writing to a Vec cannot fail");
                match state.store.put(&key, &body) {
                    Ok(()) => (JobStatus::Done, None),
                    Err(e) => (JobStatus::Failed, Some(format!("store write failed: {e}"))),
                }
            }
        };

        let mut inner = state.inner.lock().expect("server poisoned");
        inner.inflight.remove(&key);
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.status = status;
            job.error = error;
        }
    }
}

fn handle_connection(mut stream: TcpStream, state: &State) {
    let request = match read_request(&mut stream) {
        Ok(Ok(request)) => request,
        Ok(Err(e)) => {
            let _ = write_response(&mut stream, &Response::error(e.status, "http", &e.message));
            return;
        }
        Err(_) => return,
    };
    let response = route(&request, state);
    let _ = write_response(&mut stream, &response);
}

fn route(request: &Request, state: &State) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => healthz(state),
        ("GET", ["v1", "cache", "stats"]) => cache_stats(state),
        ("POST", ["v1", "jobs"]) => submit(request, state),
        ("GET", ["v1", "jobs", id]) => job_status(id, state),
        ("GET", ["v1", "jobs", id, "result"]) => job_result(id, state),
        ("DELETE", ["v1", "jobs", id]) => cancel_job(id, state),
        (_, ["v1", "jobs", ..]) | (_, ["v1", "healthz"]) | (_, ["v1", "cache", "stats"]) => {
            Response::error(405, "method_not_allowed", "wrong method for this path")
        }
        _ => Response::error(404, "not_found", "unknown path"),
    }
}

fn healthz(state: &State) -> Response {
    let inner = state.inner.lock().expect("server poisoned");
    let body = format!(
        "{{\"status\":\"ok\",\"jobs\":{},\"queued\":{}}}\n",
        inner.jobs.len(),
        inner.queue.len()
    );
    Response::json(200, body.into_bytes())
}

fn cache_stats(state: &State) -> Response {
    let entries = state.store.len().unwrap_or(0);
    let c = &state.counters;
    let body = format!(
        "{{\"entries\":{},\"jobs_submitted\":{},\"coalesced\":{},\"store_hits\":{},\
         \"store_misses\":{},\"corrupt_detected\":{},\"engine_cells_simulated\":{}}}\n",
        entries,
        c.jobs_submitted.load(Ordering::Acquire),
        c.coalesced.load(Ordering::Acquire),
        c.store_hits.load(Ordering::Acquire),
        c.store_misses.load(Ordering::Acquire),
        c.corrupt_detected.load(Ordering::Acquire),
        c.engine_cells_simulated.load(Ordering::Acquire),
    );
    Response::json(200, body.into_bytes())
}

/// The content-addressed store key for a spec under the current report
/// schema.
fn content_key(spec: &ExperimentSpec) -> String {
    format!("{}-r{}", spec.fingerprint(), REPORT_SCHEMA_VERSION)
}

fn spec_error_response(e: &SpecError) -> Response {
    Response::error(400, e.kind(), &e.to_string())
}

fn submit(request: &Request, state: &State) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "malformed", "the body is not UTF-8");
    };
    let spec = match ExperimentSpec::from_json(text) {
        Ok(spec) => spec,
        Err(e) => return spec_error_response(&e),
    };
    let key = content_key(&spec);
    state.counters.jobs_submitted.fetch_add(1, Ordering::AcqRel);

    let mut inner = state.inner.lock().expect("server poisoned");

    // Coalesce onto an identical queued/running job first: no store
    // read, no second enqueue.
    if let Some(existing) = inner.inflight.get(&key) {
        let id = existing.clone();
        let status = inner.jobs[&id].status;
        state.counters.coalesced.fetch_add(1, Ordering::AcqRel);
        return Response::json(
            202,
            format!(
                "{{\"job_id\":{},\"status\":\"{}\",\"cached\":false,\"coalesced\":true}}\n",
                escape(&id),
                status.as_str()
            )
            .into_bytes(),
        );
    }

    let served_from_store = match state.store.get(&key) {
        StoreLookup::Hit(_) => {
            state.counters.store_hits.fetch_add(1, Ordering::AcqRel);
            true
        }
        StoreLookup::Corrupt => {
            // Detected by the entry fingerprint: recompute and heal.
            state
                .counters
                .corrupt_detected
                .fetch_add(1, Ordering::AcqRel);
            state.counters.store_misses.fetch_add(1, Ordering::AcqRel);
            false
        }
        StoreLookup::Miss => {
            state.counters.store_misses.fetch_add(1, Ordering::AcqRel);
            false
        }
    };

    inner.next_id += 1;
    let id = format!("j{}", inner.next_id);
    let job = Job {
        key: key.clone(),
        spec,
        status: if served_from_store {
            JobStatus::Done
        } else {
            JobStatus::Queued
        },
        progress: ExecProgress::new(),
        cached: served_from_store,
        error: None,
    };
    inner.jobs.insert(id.clone(), job);
    if served_from_store {
        return Response::json(
            200,
            format!(
                "{{\"job_id\":{},\"status\":\"done\",\"cached\":true}}\n",
                escape(&id)
            )
            .into_bytes(),
        );
    }
    inner.inflight.insert(key, id.clone());
    inner.queue.push_back(id.clone());
    state.wake_runner.notify_all();
    Response::json(
        202,
        format!(
            "{{\"job_id\":{},\"status\":\"queued\",\"cached\":false}}\n",
            escape(&id)
        )
        .into_bytes(),
    )
}

fn status_doc(id: &str, job: &Job) -> String {
    let total = job.spec.num_cells() as u64;
    let completed = if job.status == JobStatus::Done {
        total
    } else {
        job.progress.completed().min(total)
    };
    let error = job
        .error
        .as_deref()
        .map_or(String::new(), |e| format!(",\"error\":{}", escape(e)));
    format!(
        "{{\"job_id\":{},\"status\":\"{}\",\"cached\":{},\
         \"cells_total\":{total},\"cells_completed\":{completed}{error}}}\n",
        escape(id),
        job.status.as_str(),
        job.cached,
    )
}

fn job_status(id: &str, state: &State) -> Response {
    let inner = state.inner.lock().expect("server poisoned");
    match inner.jobs.get(id) {
        Some(job) => Response::json(200, status_doc(id, job).into_bytes()),
        None => Response::error(404, "not_found", "no such job"),
    }
}

fn job_result(id: &str, state: &State) -> Response {
    let (key, status) = {
        let inner = state.inner.lock().expect("server poisoned");
        match inner.jobs.get(id) {
            Some(job) => (job.key.clone(), job.status),
            None => return Response::error(404, "not_found", "no such job"),
        }
    };
    match status {
        JobStatus::Done => match state.store.get(&key) {
            StoreLookup::Hit(body) => Response::json(200, body),
            StoreLookup::Miss | StoreLookup::Corrupt => {
                state
                    .counters
                    .corrupt_detected
                    .fetch_add(1, Ordering::AcqRel);
                Response::error(
                    410,
                    "corrupt",
                    "the stored result failed verification; resubmit to recompute",
                )
            }
        },
        JobStatus::Failed => Response::error(409, "failed", "the job failed; see its status"),
        JobStatus::Cancelled => Response::error(409, "cancelled", "the job was cancelled"),
        JobStatus::Queued | JobStatus::Running => {
            Response::error(409, "not_done", "the job has not finished yet")
        }
    }
}

fn cancel_job(id: &str, state: &State) -> Response {
    let mut inner = state.inner.lock().expect("server poisoned");
    let Some(job) = inner.jobs.get_mut(id) else {
        return Response::error(404, "not_found", "no such job");
    };
    match job.status {
        JobStatus::Queued => {
            job.status = JobStatus::Cancelled;
            job.progress.cancel();
            let key = job.key.clone();
            inner.inflight.remove(&key);
            let doc = status_doc(id, &inner.jobs[id]);
            Response::json(200, doc.into_bytes())
        }
        JobStatus::Running => {
            job.progress.cancel();
            Response::json(202, status_doc(id, job).into_bytes())
        }
        // Terminal states: cancellation is a no-op, report as-is.
        JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled => {
            Response::json(200, status_doc(id, job).into_bytes())
        }
    }
}
