//! A minimal, dependency-free HTTP/1.1 reader and writer.
//!
//! The workspace is deliberately std-only, so the job server speaks
//! HTTP through this module instead of a framework. Scope is exactly
//! what the `/v1` API needs: one request per connection
//! (`Connection: close`), `Content-Length` bodies only (no chunked
//! transfer), and JSON payloads.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// The largest request body the server accepts, in bytes. Experiment
/// specs are small; anything bigger is a mistake or abuse.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method (`GET`, `POST`, `DELETE`, ...), uppercase.
    pub method: String,
    /// The request path, query string stripped.
    pub path: String,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be read. Carries the HTTP status the
/// connection handler should answer with.
#[derive(Debug)]
pub struct RequestError {
    /// The status code to respond with.
    pub status: u16,
    /// A human-readable reason, sent in the JSON error payload.
    pub message: String,
}

impl RequestError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        RequestError {
            status,
            message: message.into(),
        }
    }
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// Returns `Ok(Err(_))` for malformed or over-limit requests (answer
/// with the carried status) and `Err(_)` for transport failures (drop
/// the connection).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Result<Request, RequestError>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a request line",
        ));
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(Err(RequestError::new(400, "malformed request line")));
    };
    let method = method.to_ascii_uppercase();
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut content_length: usize = 0;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(Err(RequestError::new(400, "truncated headers")));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => return Ok(Err(RequestError::new(400, "bad Content-Length"))),
                };
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(RequestError::new(
            413,
            format!("body exceeds {MAX_BODY_BYTES} bytes"),
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Ok(Request { method, path, body }))
}

/// One HTTP response. Bodies are `application/json` except for the
/// Prometheus exposition, which is plain text.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with `status` and a JSON `body`.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A `text/plain` response in the Prometheus exposition dialect.
    pub fn metrics_text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into(),
        }
    }

    /// The standard error payload:
    /// `{"error": {"kind": ..., "message": ...}}`.
    pub fn error(status: u16, kind: &str, message: &str) -> Self {
        let body = format!(
            "{{\"error\":{{\"kind\":{},\"message\":{}}}}}\n",
            turnroute_experiment::json::escape(kind),
            turnroute_experiment::json::escape(message),
        );
        Response::json(status, body.into_bytes())
    }
}

/// The reason phrase for the status codes the API uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

/// Writes `response` to `stream` and flushes. Every response closes
/// the connection.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}
