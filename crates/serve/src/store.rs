//! The content-addressed on-disk result store.
//!
//! One file per result, named by the submission's content key (the
//! spec fingerprint plus the report schema version). Each entry opens
//! with a header line carrying a fingerprint of the body, so a
//! truncated or bit-flipped entry is *detected* on read — the caller
//! sees [`StoreLookup::Corrupt`], counts it, and recomputes — instead
//! of being served as a silently wrong report.
//!
//! Entries are written atomically (temp file + rename), so a crashed
//! writer never leaves a half-entry under a valid key.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use turnroute_rng::split_mix_64;

/// Magic + version prefix of every entry's header line.
const HEADER_PREFIX: &str = "turnroute-store v1";

/// The outcome of a [`ResultStore::get`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreLookup {
    /// The entry exists and its body matched its fingerprint.
    Hit(Vec<u8>),
    /// No entry under this key.
    Miss,
    /// An entry exists but is truncated, bit-flipped, or otherwise
    /// unreadable; the caller should recompute and overwrite.
    Corrupt,
}

/// Folds `bytes` into the 64-bit fingerprint stored in entry headers.
pub fn body_fingerprint(bytes: &[u8]) -> u64 {
    let mut fp = 0x5708_E5ED_u64;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        fp ^= u64::from_le_bytes(word);
        split_mix_64(&mut fp);
    }
    fp ^= bytes.len() as u64;
    split_mix_64(&mut fp);
    fp
}

/// A directory of fingerprint-verified result entries.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        // Keys are hex fingerprints plus a short suffix; reject
        // anything that could escape the directory.
        debug_assert!(
            key.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
            "store keys are fingerprint-derived"
        );
        self.dir.join(format!("{key}.entry"))
    }

    /// Looks up `key`, verifying length and fingerprint.
    pub fn get(&self, key: &str) -> StoreLookup {
        let mut file = match std::fs::File::open(self.entry_path(key)) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return StoreLookup::Miss,
            Err(_) => return StoreLookup::Corrupt,
        };
        let mut raw = Vec::new();
        if file.read_to_end(&mut raw).is_err() {
            return StoreLookup::Corrupt;
        }
        let Some(newline) = raw.iter().position(|&b| b == b'\n') else {
            return StoreLookup::Corrupt;
        };
        let Ok(header) = std::str::from_utf8(&raw[..newline]) else {
            return StoreLookup::Corrupt;
        };
        let Some(rest) = header.strip_prefix(HEADER_PREFIX) else {
            return StoreLookup::Corrupt;
        };
        let mut fields = rest.split_whitespace();
        let (Some(fp), Some(len), None) = (fields.next(), fields.next(), fields.next()) else {
            return StoreLookup::Corrupt;
        };
        let (Ok(fp), Ok(len)) = (u64::from_str_radix(fp, 16), len.parse::<usize>()) else {
            return StoreLookup::Corrupt;
        };
        let body = &raw[newline + 1..];
        if body.len() != len || body_fingerprint(body) != fp {
            return StoreLookup::Corrupt;
        }
        StoreLookup::Hit(body.to_vec())
    }

    /// Stores `body` under `key`, atomically replacing any existing
    /// entry (including a corrupt one).
    pub fn put(&self, key: &str, body: &[u8]) -> io::Result<()> {
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!("{key}.tmp-{}", std::process::id()));
        {
            let mut file = std::fs::File::create(&tmp)?;
            writeln!(
                file,
                "{HEADER_PREFIX} {:016x} {}",
                body_fingerprint(body),
                body.len()
            )?;
            file.write_all(body)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)
    }

    /// Number of entries on disk (corrupt ones included — they still
    /// occupy their key until overwritten).
    pub fn len(&self) -> io::Result<usize> {
        let mut count = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "entry") {
                count += 1;
            }
        }
        Ok(count)
    }

    /// `true` if the store holds no entries.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Total on-disk size of all entries, in bytes (headers included —
    /// this is the directory's footprint, not the sum of body lengths).
    pub fn total_bytes(&self) -> io::Result<u64> {
        let mut bytes = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "entry") {
                bytes += entry.metadata()?.len();
            }
        }
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ResultStore {
        let dir =
            std::env::temp_dir().join(format!("turnroute-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::open(dir).unwrap()
    }

    #[test]
    fn round_trips_bodies_byte_identically() {
        let store = temp_store("rt");
        assert_eq!(store.get("a1b2"), StoreLookup::Miss);
        let body = b"{\"schema_version\":1,\"series\":[]}\n";
        store.put("a1b2", body).unwrap();
        assert_eq!(store.get("a1b2"), StoreLookup::Hit(body.to_vec()));
        assert_eq!(store.len().unwrap(), 1);
        // The entry's footprint covers the header line plus the body.
        assert!(store.total_bytes().unwrap() > body.len() as u64);
        // Overwrite replaces the body.
        store.put("a1b2", b"v2").unwrap();
        assert_eq!(store.get("a1b2"), StoreLookup::Hit(b"v2".to_vec()));
        assert_eq!(store.len().unwrap(), 1);
    }

    #[test]
    fn detects_bit_flips_truncation_and_garbage() {
        let store = temp_store("corrupt");
        store.put("key-1", b"a body worth protecting").unwrap();
        let path = store.dir.join("key-1.entry");
        let pristine = std::fs::read(&path).unwrap();

        // Flip one body byte.
        let mut flipped = pristine.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(store.get("key-1"), StoreLookup::Corrupt);

        // Truncate.
        std::fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
        assert_eq!(store.get("key-1"), StoreLookup::Corrupt);

        // Replace with garbage lacking the header.
        std::fs::write(&path, b"not an entry at all").unwrap();
        assert_eq!(store.get("key-1"), StoreLookup::Corrupt);

        // A put heals the key.
        store.put("key-1", b"recomputed").unwrap();
        assert_eq!(store.get("key-1"), StoreLookup::Hit(b"recomputed".to_vec()));
    }

    #[test]
    fn fingerprint_separates_length_and_content() {
        assert_ne!(body_fingerprint(b"ab"), body_fingerprint(b"ba"));
        assert_ne!(body_fingerprint(b"a"), body_fingerprint(b"a\0"));
        assert_eq!(body_fingerprint(b"same"), body_fingerprint(b"same"));
    }
}
