//! Hand-rolled service metrics and their Prometheus text exposition.
//!
//! The workspace is std-only, so this module supplies the three
//! primitives `GET /v1/metrics` needs instead of a metrics framework:
//!
//! * **labeled counters** — [`LabeledCounter`], a mutex-guarded ordered
//!   map from a small, bounded label tuple to a count (route × status
//!   for the access counter). Scrapes are rare and label sets tiny, so
//!   a mutex beats sharding complexity;
//! * **duration histograms** — [`DurationHistogram`], the simulator's
//!   log-bucketed mergeable [`LatencyHistogram`] recording microseconds,
//!   exposed as a Prometheus histogram over a fixed cumulative `le`
//!   ladder via [`LatencyHistogram::count_le`];
//! * **an exposition writer** — [`Expo`], emitting the text format
//!   (version 0.0.4: `# HELP` / `# TYPE` headers, `name{labels} value`
//!   samples) that Prometheus, VictoriaMetrics and `promtool` ingest.
//!
//! Scalar counters stay plain `AtomicU64`s at their call sites; this
//! module renders them. Everything here is monotonic or gauge-valued —
//! nothing feeds back into experiment results, which must stay
//! byte-identical whether or not anyone scrapes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use turnroute_sim::LatencyHistogram;

/// The cumulative `le` ladder (seconds) both duration histograms
/// expose. Chosen to straddle the API's realistic range: sub-ms cache
/// hits up to multi-second sweep jobs.
pub const DURATION_BUCKETS_SECS: &[f64] = &[0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0];

/// A monotone counter split by a small label tuple (e.g. route ×
/// status code). Label cardinality is bounded by construction: routes
/// are a fixed enumeration and status codes a handful of values.
#[derive(Debug, Default)]
pub struct LabeledCounter {
    counts: Mutex<BTreeMap<(String, String), u64>>,
}

impl LabeledCounter {
    /// Adds 1 to the `(a, b)` label pair's count.
    pub fn increment(&self, a: &str, b: &str) {
        let mut counts = self.counts.lock().expect("metrics poisoned");
        *counts.entry((a.to_owned(), b.to_owned())).or_insert(0) += 1;
    }

    /// A stable-ordered snapshot of every labeled count.
    pub fn snapshot(&self) -> Vec<((String, String), u64)> {
        self.counts
            .lock()
            .expect("metrics poisoned")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }
}

/// A duration histogram: microsecond samples in a log-bucketed
/// [`LatencyHistogram`], scraped as Prometheus cumulative buckets.
#[derive(Debug, Default)]
pub struct DurationHistogram {
    hist: Mutex<LatencyHistogram>,
}

impl DurationHistogram {
    /// Records one duration, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.hist.lock().expect("metrics poisoned").record(micros);
    }

    /// A point-in-time copy for rendering.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.hist.lock().expect("metrics poisoned").clone()
    }
}

/// A Prometheus text-exposition builder (format version 0.0.4).
#[derive(Debug, Default)]
pub struct Expo {
    out: String,
}

impl Expo {
    /// An empty exposition.
    pub fn new() -> Self {
        Expo::default()
    }

    /// Emits the `# HELP` / `# TYPE` header pair for a metric family.
    /// `kind` is `counter`, `gauge` or `histogram`.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line; `labels` render as `{k="v",...}` with
    /// label values escaped per the exposition format.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: impl std::fmt::Display) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
                let _ = write!(self.out, "{k}=\"{escaped}\"");
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// Emits a full histogram family from microsecond samples: the
    /// cumulative `_bucket{le=...}` ladder ([`DURATION_BUCKETS_SECS`]
    /// plus `+Inf`), `_sum` (seconds) and `_count`.
    pub fn duration_histogram(&mut self, name: &str, help: &str, hist: &LatencyHistogram) {
        self.family(name, help, "histogram");
        let bucket = format!("{name}_bucket");
        for &le in DURATION_BUCKETS_SECS {
            let micros = (le * 1e6) as u64;
            self.sample(&bucket, &[("le", &format!("{le}"))], hist.count_le(micros));
        }
        self.sample(&bucket, &[("le", "+Inf")], hist.len());
        self.sample(&format!("{name}_sum"), &[], hist.sum() as f64 / 1e6);
        self.sample(&format!("{name}_count"), &[], hist.len());
    }

    /// The rendered exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_counters_snapshot_in_stable_order() {
        let c = LabeledCounter::default();
        c.increment("jobs", "202");
        c.increment("healthz", "200");
        c.increment("jobs", "202");
        let snap = c.snapshot();
        assert_eq!(
            snap,
            vec![
                (("healthz".to_owned(), "200".to_owned()), 1),
                (("jobs".to_owned(), "202".to_owned()), 2),
            ]
        );
    }

    #[test]
    fn exposition_renders_families_labels_and_escapes() {
        let mut e = Expo::new();
        e.family("x_total", "Things that happened.", "counter");
        e.sample("x_total", &[("route", "jobs"), ("code", "200")], 7);
        e.sample("y", &[("path", "a\"b\\c")], 1.5);
        e.sample("z", &[], 0);
        let text = e.finish();
        assert!(text.contains("# HELP x_total Things that happened.\n"));
        assert!(text.contains("# TYPE x_total counter\n"));
        assert!(text.contains("x_total{route=\"jobs\",code=\"200\"} 7\n"));
        assert!(text.contains("y{path=\"a\\\"b\\\\c\"} 1.5\n"));
        assert!(text.contains("z 0\n"));
    }

    #[test]
    fn duration_histogram_buckets_are_cumulative_and_capped_by_count() {
        let h = DurationHistogram::default();
        h.record_micros(500); // 0.0005 s
        h.record_micros(30_000); // 0.03 s
        h.record_micros(3_000_000); // 3 s
        let mut e = Expo::new();
        e.duration_histogram("d_seconds", "Durations.", &h.snapshot());
        let text = e.finish();
        assert!(text.contains("# TYPE d_seconds histogram"));
        assert!(text.contains("d_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("d_seconds_count 3\n"));
        // Cumulative: each bucket's value never exceeds the next's.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("d_seconds_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "bucket ladder not cumulative: {line}");
            prev = v;
        }
        // The 3 s sample lands above le=2.5 but within le=10.
        assert!(text.contains("d_seconds_bucket{le=\"2.5\"} 2\n"));
        assert!(text.contains("d_seconds_bucket{le=\"10\"} 3\n"));
    }
}
