//! Sweep-as-a-service: a persistent, headless job server over the
//! turnroute executor.
//!
//! The one-shot CLI pays full recompute for every query even though
//! results are deterministic and fingerprinted. This crate turns the
//! simulator into a shared service:
//!
//! * [`server`] — the HTTP/JSON API: `POST /v1/jobs` submits an
//!   [`turnroute_experiment::ExperimentSpec`], `GET /v1/jobs/{id}`
//!   polls status with per-cell progress, `GET /v1/jobs/{id}/result`
//!   returns the versioned report, plus `GET /v1/healthz` and
//!   `GET /v1/cache/stats`;
//! * [`store`] — the content-addressed on-disk result store, keyed by
//!   [`turnroute_experiment::ExperimentSpec::fingerprint`] (which folds
//!   in fault-plan identity) so identical specs are served from disk
//!   byte-identically with zero engine cycles;
//! * [`http`] — a minimal dependency-free HTTP/1.1 reader/writer (the
//!   workspace is std-only by design);
//! * [`client`] — the thin blocking client used by the `turnroute
//!   submit`/`status`/`fetch` subcommands and the integration tests;
//! * [`metrics`] — hand-rolled counters/histograms behind the
//!   Prometheus-text `GET /v1/metrics` endpoint.
//!
//! Duplicate in-flight submissions coalesce onto one running job; a
//! corrupted store entry is detected by its fingerprint and recomputed.
//! Every request and job lifecycle is traced through the structured
//! [`turnroute_sim::oplog`] logger when one is configured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod server;
pub mod store;

pub use server::{ServeOptions, Server, ServerHandle};
pub use store::{ResultStore, StoreLookup};
