//! A thin blocking HTTP client for the `/v1` API.
//!
//! Backs the `turnroute submit`/`status`/`fetch` subcommands and the
//! integration tests. One request per connection, mirroring the
//! server's `Connection: close` discipline.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Sends one `method` request for `path` to `addr` (a `host:port`
/// string) and returns `(status, body)`.
///
/// # Errors
///
/// Fails on connection or transport errors; HTTP-level errors come
/// back as their status code, not as `Err`.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP status line"))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated response headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }

    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok((status, body))
}

/// `POST /v1/jobs` with the spec JSON. Returns `(status, body)`.
pub fn submit(addr: &str, spec_json: &str) -> io::Result<(u16, Vec<u8>)> {
    http_request(addr, "POST", "/v1/jobs", Some(spec_json.as_bytes()))
}

/// `GET /v1/jobs/{id}`.
pub fn status(addr: &str, job_id: &str) -> io::Result<(u16, Vec<u8>)> {
    http_request(addr, "GET", &format!("/v1/jobs/{job_id}"), None)
}

/// `GET /v1/jobs/{id}/result`.
pub fn fetch(addr: &str, job_id: &str) -> io::Result<(u16, Vec<u8>)> {
    http_request(addr, "GET", &format!("/v1/jobs/{job_id}/result"), None)
}

/// `DELETE /v1/jobs/{id}`.
pub fn cancel(addr: &str, job_id: &str) -> io::Result<(u16, Vec<u8>)> {
    http_request(addr, "DELETE", &format!("/v1/jobs/{job_id}"), None)
}

/// `GET /v1/cache/stats`.
pub fn cache_stats(addr: &str) -> io::Result<(u16, Vec<u8>)> {
    http_request(addr, "GET", "/v1/cache/stats", None)
}

/// `GET /v1/metrics` — the Prometheus text exposition.
pub fn metrics(addr: &str) -> io::Result<(u16, Vec<u8>)> {
    http_request(addr, "GET", "/v1/metrics", None)
}
