//! A small `std`-only timing harness for the `benches/` targets.
//!
//! The build environment is fully offline, so the workspace cannot pull
//! in criterion; this module supplies the subset the benches need:
//! auto-calibrated iteration counts, repeated samples, and a median /
//! mean / min report per benchmark, printed in a stable one-line format
//! that downstream tooling (BENCH_sweep.json) can scrape.

use std::time::{Duration, Instant};

/// One benchmark's measured statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// The benchmark's name as printed.
    pub name: String,
    /// Median per-iteration time across samples.
    pub median_ns: f64,
    /// Mean per-iteration time across samples.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time.
    pub min_ns: f64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per sample (auto-calibrated).
    pub iters_per_sample: u64,
}

impl BenchResult {
    /// Median time in seconds per iteration.
    pub fn median_secs(&self) -> f64 {
        self.median_ns / 1e9
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A registry of benchmarks, mirroring criterion's `bench_function`
/// shape closely enough that the bench sources read the same.
pub struct Harness {
    samples: usize,
    target_sample_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A harness with the default sample count (20).
    pub fn new() -> Self {
        Harness {
            samples: 20,
            target_sample_time: Duration::from_millis(20),
            results: Vec::new(),
        }
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0);
        self.samples = samples;
        self
    }

    /// Times `f`, printing a one-line report and recording the result.
    ///
    /// Iteration count per sample is calibrated so one sample lasts at
    /// least the target sample time (very slow bodies run once per
    /// sample; microsecond bodies run thousands of times).
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        // Calibrate: run once (also warms caches), then pick iters.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters =
            (self.target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min_ns = per_iter_ns[0];
        println!(
            "bench {name:<48} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {} iters)",
            format_ns(median_ns),
            format_ns(mean_ns),
            format_ns(min_ns),
            self.samples,
            iters,
        );
        self.results.push(BenchResult {
            name: name.to_owned(),
            median_ns,
            mean_ns,
            min_ns,
            samples: self.samples,
            iters_per_sample: iters,
        });
        self.results.last().expect("just pushed")
    }

    /// All results recorded so far, in bench order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A flat JSON object builder for the repo-root `BENCH_*.json`
/// artifacts, so every bench emits the same hand-readable shape
/// (insertion-ordered keys, one per line) without a serde dependency.
#[derive(Debug, Default)]
pub struct JsonReport {
    fields: Vec<(String, String)>,
}

impl JsonReport {
    /// An empty report.
    pub fn new() -> Self {
        JsonReport::default()
    }

    /// Adds a string field (escapes quotes and backslashes).
    pub fn field_str(mut self, key: &str, value: &str) -> Self {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.fields.push((key.to_owned(), format!("\"{escaped}\"")));
        self
    }

    /// Adds a numeric field, rendered with up to 4 decimal places
    /// (trailing zeros trimmed, integers stay integers).
    pub fn field_num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value == value.trunc() && value.abs() < 1e15 {
            format!("{value:.0}")
        } else {
            let mut s = format!("{value:.4}");
            while s.ends_with('0') {
                s.pop();
            }
            if s.ends_with('.') {
                s.push('0');
            }
            s
        };
        self.fields.push((key.to_owned(), rendered));
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Adds `<prefix>_median_secs` and `<prefix>_mean_secs` from a
    /// recorded [`BenchResult`].
    pub fn result(self, prefix: &str, r: &BenchResult) -> Self {
        self.field_num(&format!("{prefix}_median_secs"), r.median_ns / 1e9)
            .field_num(&format!("{prefix}_mean_secs"), r.mean_ns / 1e9)
    }

    /// The report as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            out.push_str(&format!("  \"{key}\": {value}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Writes the report to `path`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written — benches have no caller to
    /// hand an error to.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_positive_times() {
        let mut h = Harness::new().sample_size(3);
        let r = h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn json_report_renders_flat_ordered_object() {
        let text = JsonReport::new()
            .field_str("bench", "engine \"hot\" path")
            .field_num("speedup", 1.50)
            .field_num("cycles", 8398.0)
            .field_num("tiny", 0.00004)
            .field_bool("identical", true)
            .render();
        assert_eq!(
            text,
            "{\n  \"bench\": \"engine \\\"hot\\\" path\",\n  \"speedup\": 1.5,\n  \
             \"cycles\": 8398,\n  \"tiny\": 0.0,\n  \"identical\": true\n}\n"
        );
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
