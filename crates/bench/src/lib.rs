//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artifact of Glass & Ni's
//! evaluation; see `DESIGN.md`'s experiment index. Every binary accepts
//! `--full` for paper-scale measurement windows (the default "quick"
//! mode produces the same qualitative shapes in a fraction of the time)
//! and prints CSV to stdout with a human-readable summary on stderr.

pub mod regression;
pub mod timing;
pub mod workloads;

use turnroute::experiment::ExperimentSpec;
use turnroute_sim::report::write_csv;
use turnroute_sim::{Executor, SimConfig, SweepSeries};

/// Measurement scale for a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short windows: same qualitative curves, minutes not hours.
    Quick,
    /// Paper-scale windows.
    Full,
}

impl Scale {
    /// Parses process arguments: `--full` selects [`Scale::Full`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// The base simulation configuration at this scale.
    pub fn config(self) -> SimConfig {
        match self {
            Scale::Quick => SimConfig::paper()
                .warmup_cycles(6_000)
                .measure_cycles(20_000),
            Scale::Full => SimConfig::paper()
                .warmup_cycles(40_000)
                .measure_cycles(120_000),
        }
    }
}

/// The offered loads (flits per cycle per node) swept for the 16x16 mesh
/// figures. Saturation for dimension-ordered uniform traffic sits near
/// 0.1; the sweep brackets every algorithm/pattern pairing.
pub const MESH_LOADS: &[f64] = &[
    0.01, 0.02, 0.04, 0.06, 0.08, 0.09, 0.10, 0.12, 0.14, 0.18, 0.25,
];

/// The offered loads swept for the 8-cube figures (higher bisection
/// bandwidth, so saturation sits higher).
pub const CUBE_LOADS: &[f64] = &[0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.55];

/// Common regenerator arguments: `--full` for paper-scale windows and
/// `--threads N` for the parallel executor.
#[derive(Debug, Clone, Copy)]
pub struct RunArgs {
    /// Measurement scale.
    pub scale: Scale,
    /// Worker threads for the experiment executor. Results are
    /// bit-identical for every value.
    pub threads: usize,
}

impl RunArgs {
    /// Parses process arguments (`--full`, `--threads N`).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let threads = args
            .iter()
            .position(|a| a == "--threads")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1);
        RunArgs {
            scale: Scale::from_args(),
            threads,
        }
    }
}

/// Runs several experiment specs through one parallel executor and
/// prints their combined CSV (uniform schema, one header) to stdout
/// plus a max-sustainable-throughput summary to stderr. Returns one
/// group of series per spec, in spec order.
///
/// # Panics
///
/// Panics if a spec does not resolve — regenerator specs are static, so
/// a bad name is a bug, not an input error.
pub fn run_specs(title: &str, specs: &[ExperimentSpec], args: RunArgs) -> Vec<Vec<SweepSeries>> {
    eprintln!(
        "# {title} ({:?} scale, {} thread(s))",
        args.scale, args.threads
    );
    let mut executor = Executor::new(args.threads);
    let groups: Vec<Vec<SweepSeries>> = specs
        .iter()
        .map(|s| {
            s.run_on(&mut executor)
                .unwrap_or_else(|e| panic!("regenerator spec does not resolve: {e}"))
        })
        .collect();
    let flat: Vec<SweepSeries> = groups.iter().flatten().cloned().collect();
    let mut out = std::io::stdout().lock();
    write_csv(&flat, &mut out).expect("writing CSV to stdout");
    for s in &flat {
        eprintln!(
            "#   {:<22} / {:<20} max sustainable {:>8.1} flits/usec",
            s.algorithm,
            s.pattern,
            s.max_sustainable_throughput()
        );
    }
    groups
}

/// Runs one figure described as a spec: [`run_specs`] for the common
/// single-spec case.
pub fn run_spec(title: &str, spec: &ExperimentSpec, args: RunArgs) -> Vec<SweepSeries> {
    run_specs(title, std::slice::from_ref(spec), args).remove(0)
}

/// Formats a ratio like the paper's "twice"/"four times" claims.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::INFINITY
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller_than_full() {
        let q = Scale::Quick.config();
        let f = Scale::Full.config();
        assert!(q.measure_cycles < f.measure_cycles);
        assert!(q.warmup_cycles < f.warmup_cycles);
    }

    #[test]
    fn loads_are_increasing() {
        for loads in [MESH_LOADS, CUBE_LOADS] {
            assert!(loads.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(4.0, 2.0), 2.0);
        assert!(ratio(1.0, 0.0).is_infinite());
    }
}
