//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artifact of Glass & Ni's
//! evaluation; see `DESIGN.md`'s experiment index. Every binary accepts
//! `--full` for paper-scale measurement windows (the default "quick"
//! mode produces the same qualitative shapes in a fraction of the time)
//! and prints CSV to stdout with a human-readable summary on stderr.

use turnroute_core::RoutingAlgorithm;
use turnroute_sim::{patterns::TrafficPattern, SimConfig, SweepSeries};
use turnroute_topology::Topology;

/// Measurement scale for a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short windows: same qualitative curves, minutes not hours.
    Quick,
    /// Paper-scale windows.
    Full,
}

impl Scale {
    /// Parses process arguments: `--full` selects [`Scale::Full`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// The base simulation configuration at this scale.
    pub fn config(self) -> SimConfig {
        match self {
            Scale::Quick => SimConfig::paper()
                .warmup_cycles(6_000)
                .measure_cycles(20_000),
            Scale::Full => SimConfig::paper()
                .warmup_cycles(40_000)
                .measure_cycles(120_000),
        }
    }
}

/// The offered loads (flits per cycle per node) swept for the 16x16 mesh
/// figures. Saturation for dimension-ordered uniform traffic sits near
/// 0.1; the sweep brackets every algorithm/pattern pairing.
pub const MESH_LOADS: &[f64] = &[
    0.01, 0.02, 0.04, 0.06, 0.08, 0.09, 0.10, 0.12, 0.14, 0.18, 0.25,
];

/// The offered loads swept for the 8-cube figures (higher bisection
/// bandwidth, so saturation sits higher).
pub const CUBE_LOADS: &[f64] = &[0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.55];

/// Runs one figure: sweeps every `(name, algorithm)` pair under
/// `pattern` and prints the combined CSV to stdout plus a summary table
/// (max sustainable throughput per algorithm) to stderr.
pub fn run_figure(
    title: &str,
    topo: &dyn Topology,
    algorithms: &[(&str, &dyn RoutingAlgorithm)],
    pattern: &dyn TrafficPattern,
    loads: &[f64],
    scale: Scale,
) -> Vec<SweepSeries> {
    let config = scale.config();
    eprintln!("# {title} on {} ({:?} scale)", topo.label(), scale);
    println!("algorithm,pattern,offered_load,throughput_flits_per_usec,avg_latency_usec,p95_latency_usec,avg_hops,sustainable");
    let mut all = Vec::new();
    for &(name, algo) in algorithms {
        let mut series = turnroute_sim::sweep(topo, algo, pattern, &config, loads);
        series.algorithm = name.to_owned();
        print!("{}", series.to_csv());
        eprintln!(
            "#   {:<16} max sustainable throughput {:>8.1} flits/usec",
            name,
            series.max_sustainable_throughput()
        );
        all.push(series);
    }
    all
}

/// Formats a ratio like the paper's "twice"/"four times" claims.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::INFINITY
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller_than_full() {
        let q = Scale::Quick.config();
        let f = Scale::Full.config();
        assert!(q.measure_cycles < f.measure_cycles);
        assert!(q.warmup_cycles < f.warmup_cycles);
    }

    #[test]
    fn loads_are_increasing() {
        for loads in [MESH_LOADS, CUBE_LOADS] {
            assert!(loads.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(4.0, 2.0), 2.0);
        assert!(ratio(1.0, 0.0).is_infinite());
    }
}
