//! The two committed perf workloads, factored so the `benches/`
//! targets and the `bench_record` regression gate measure *exactly*
//! the same thing.
//!
//! * [`measure_engine`] — hot-path throughput: simulated cycles per
//!   second on the standard 16x16-mesh transpose workload, route table
//!   on and off (the `engine_throughput` bench);
//! * [`measure_engine_sharded`] — the large-mesh (64x64) workload,
//!   serial vs the cycle-barrier sharded arbitrator at one shard per
//!   core;
//! * [`measure_engine_mmpp`] — the same 16x16 workload injected
//!   through the bursty MMPP arrival process (per-node nested RNG
//!   streams), so a collapse in the injection path is caught even when
//!   the Poisson figures hold;
//! * [`measure_sweep`] — executor wall-clock on a figure-sized grid
//!   (4 algorithms x 2 patterns x 6 loads), serial vs parallel, plus
//!   the grid-cells-per-second figure the regression gate tracks (the
//!   `sweep_parallel` bench);
//! * [`measure_synth`] — turn-prohibition synthesis throughput on a
//!   16-node dragonfly: candidates evaluated per second, single
//!   worker so the figure is scheduler-independent.
//!
//! All verify determinism before timing anything: the route table
//! must not change the report, the sharded report must equal the
//! serial report, the parallel bytes must equal the serial bytes, and
//! the synthesis report must be identical run to run.

use std::sync::Arc;

use crate::timing::{BenchResult, Harness, JsonReport};
use turnroute::experiment::ExperimentSpec;
use turnroute_core::{DimensionOrder, RoutingAlgorithm, WestFirst};
use turnroute_sim::report::write_csv;
use turnroute_sim::{
    patterns, NoopObserver, RouteTable, RouteTableMode, SimConfig, SimReport, Simulation,
    SweepSeries, TrafficModel,
};
use turnroute_topology::Mesh;

/// Pre-optimisation cycles/sec at commit 1dec775: west-first/transpose.
pub const BASELINE_WEST_FIRST_CPS: f64 = 110_014.0;
/// Pre-optimisation cycles/sec at commit 1dec775: xy/transpose.
pub const BASELINE_XY_CPS: f64 = 132_812.0;

/// The offered loads of the sweep grid.
pub const SWEEP_LOADS: &[f64] = &[0.01, 0.02, 0.04, 0.08, 0.12, 0.18];

/// Algorithms in the sweep grid.
const SWEEP_ALGORITHMS: &[&str] = &["xy", "west-first", "north-last", "negative-first"];

/// Patterns in the sweep grid.
const SWEEP_PATTERNS: &[&str] = &["uniform", "transpose"];

fn engine_config(mode: RouteTableMode) -> SimConfig {
    SimConfig::paper()
        .injection_rate(0.08)
        .warmup_cycles(1_000)
        .measure_cycles(4_000)
        .seed(42)
        .route_table(mode)
}

/// One full engine run with a caller-owned table (`None` = direct
/// routing), mirroring the sweep executor, which builds the table once
/// per series and shares it across every cell.
fn engine_run(
    mesh: &Mesh,
    algo: &dyn RoutingAlgorithm,
    table: Option<Arc<RouteTable>>,
) -> (SimReport, u64) {
    let mode = if table.is_some() {
        RouteTableMode::On
    } else {
        RouteTableMode::Off
    };
    let mut sim = Simulation::with_observer_and_table(
        mesh,
        algo,
        &patterns::Transpose,
        engine_config(mode),
        NoopObserver,
        table,
    );
    let report = sim.run();
    (report, sim.cycle())
}

/// The engine-throughput workload's measured results.
#[derive(Debug, Clone)]
pub struct EngineMeasurement {
    /// west-first/transpose, table on: simulated cycles per second.
    pub west_first_cps: f64,
    /// west-first/transpose with direct routing (no table).
    pub west_first_cps_table_off: f64,
    /// xy/transpose, table on.
    pub xy_cps: f64,
    /// Cycles one run simulates (warmup + measure + drain).
    pub run_cycles: u64,
    /// Route table on/off produced byte-identical report renderings.
    pub reports_identical: bool,
    /// Raw timing for west-first with the table.
    pub west_first_on: BenchResult,
    /// Raw timing for west-first without the table.
    pub west_first_off: BenchResult,
    /// Raw timing for xy with the table.
    pub xy_on: BenchResult,
}

/// Runs the engine-throughput workload with `samples` timed samples
/// per benchmark.
///
/// # Panics
///
/// Panics if the route table changes the run length or the report —
/// that is a correctness bug, not a perf result.
pub fn measure_engine(samples: usize) -> EngineMeasurement {
    let mesh = Mesh::new_2d(16, 16);
    let wf = WestFirst::minimal();
    let xy = DimensionOrder::new();

    let wf_table = RouteTable::build(&mesh, &wf).map(Arc::new);
    let xy_table = RouteTable::build(&mesh, &xy).map(Arc::new);
    assert!(wf_table.is_some() && xy_table.is_some(), "pairs must table");

    // The route table must be invisible in the results; compare the
    // full report renderings before timing anything.
    let (wf_on, wf_cycles) = engine_run(&mesh, &wf, wf_table.clone());
    let (wf_off, off_cycles) = engine_run(&mesh, &wf, None);
    assert_eq!(wf_cycles, off_cycles, "route table changed the run length");
    let reports_identical = format!("{wf_on:?}") == format!("{wf_off:?}");
    assert!(reports_identical, "route table changed the report");

    let mut h = Harness::new().sample_size(samples);
    let west_first_on = h
        .bench("engine/mesh16/west-first/transpose/table-on", || {
            engine_run(&mesh, &wf, wf_table.clone())
        })
        .clone();
    let west_first_off = h
        .bench("engine/mesh16/west-first/transpose/table-off", || {
            engine_run(&mesh, &wf, None)
        })
        .clone();
    let xy_on = h
        .bench("engine/mesh16/xy/transpose/table-on", || {
            engine_run(&mesh, &xy, xy_table.clone())
        })
        .clone();

    let (_, xy_cycles) = engine_run(&mesh, &xy, xy_table.clone());
    EngineMeasurement {
        west_first_cps: wf_cycles as f64 / west_first_on.median_secs(),
        west_first_cps_table_off: wf_cycles as f64 / west_first_off.median_secs(),
        xy_cps: xy_cycles as f64 / xy_on.median_secs(),
        run_cycles: wf_cycles,
        reports_identical,
        west_first_on,
        west_first_off,
        xy_on,
    }
}

/// One full run of the 16x16 workload injected through the bursty
/// MMPP arrival process instead of the Poisson stream (direct routing;
/// the injection path is the subject here, not the table).
fn mmpp_run(mesh: &Mesh, algo: &dyn RoutingAlgorithm) -> (SimReport, u64) {
    let config = engine_config(RouteTableMode::Off).traffic(TrafficModel::Mmpp {
        burst_cycles: 96.0,
        idle_cycles: 288.0,
    });
    let mut sim = Simulation::new(mesh, algo, &patterns::Transpose, config);
    let report = sim.run();
    (report, sim.cycle())
}

/// The MMPP injection workload's measured results.
#[derive(Debug, Clone)]
pub struct MmppMeasurement {
    /// west-first/transpose under mmpp:96,288 — simulated cycles per
    /// second.
    pub mmpp_cps: f64,
    /// Cycles one run simulates (warmup + measure + drain).
    pub run_cycles: u64,
    /// Two untimed runs produced byte-identical report renderings.
    pub reports_identical: bool,
    /// Raw timing for the MMPP run.
    pub timing: BenchResult,
}

/// Runs the MMPP injection workload with `samples` timed samples: the
/// standard 16x16-mesh west-first/transpose run with bursty on-off
/// arrivals (mean burst 96 cycles, mean idle 288, same mean offered
/// load as the Poisson workload).
///
/// # Panics
///
/// Panics if two runs of the same seed diverge (the per-node nested
/// injection streams must be deterministic) or if the MMPP report
/// equals the Poisson one (the burstiness must actually reach the
/// engine).
pub fn measure_engine_mmpp(samples: usize) -> MmppMeasurement {
    let mesh = Mesh::new_2d(16, 16);
    let wf = WestFirst::minimal();

    let (a, cycles_a) = mmpp_run(&mesh, &wf);
    let (b, cycles_b) = mmpp_run(&mesh, &wf);
    assert_eq!(cycles_a, cycles_b, "MMPP re-run changed the run length");
    let reports_identical = format!("{a:?}") == format!("{b:?}");
    assert!(reports_identical, "MMPP re-run changed the report");
    let (poisson, _) = engine_run(&mesh, &wf, None);
    assert_ne!(
        format!("{a:?}"),
        format!("{poisson:?}"),
        "the MMPP arrival process left the run identical to Poisson"
    );

    let mut h = Harness::new().sample_size(samples);
    let timing = h
        .bench("engine/mesh16/west-first/transpose/mmpp:96,288", || {
            mmpp_run(&mesh, &wf)
        })
        .clone();

    MmppMeasurement {
        mmpp_cps: cycles_a as f64 / timing.median_secs(),
        run_cycles: cycles_a,
        reports_identical,
        timing,
    }
}

fn mesh64_config(shards: usize) -> SimConfig {
    SimConfig::paper()
        .injection_rate(0.03)
        .warmup_cycles(500)
        .measure_cycles(2_000)
        .seed(42)
        .shards(shards)
}

/// One full large-mesh run at the given shard count (`0` = auto:
/// one shard per core).
fn mesh64_run(mesh: &Mesh, algo: &dyn RoutingAlgorithm, shards: usize) -> (SimReport, u64) {
    let mut sim = Simulation::new(mesh, algo, &patterns::Transpose, mesh64_config(shards));
    let report = sim.run();
    assert!(
        sim.shard_fallback_reason().is_none(),
        "sharded bench fell back to serial: {:?}",
        sim.shard_fallback_reason()
    );
    (report, sim.cycle())
}

/// The sharded large-mesh workload's measured results.
#[derive(Debug, Clone)]
pub struct ShardedMeasurement {
    /// Hardware cores the host reports.
    pub host_cores: usize,
    /// Shards the auto run resolves to (one per core, capped).
    pub shards: usize,
    /// west-first/transpose on the 64x64 mesh, serial engine.
    pub serial_cps: f64,
    /// Same workload, cycle-barrier sharded arbitration at `shards`.
    pub sharded_cps: f64,
    /// serial time / sharded time.
    pub speedup: f64,
    /// Cycles one run simulates (warmup + measure + drain).
    pub run_cycles: u64,
    /// Serial and sharded produced byte-identical report renderings.
    pub reports_identical: bool,
    /// Raw timing for the serial run.
    pub serial: BenchResult,
    /// Raw timing for the sharded run.
    pub sharded: BenchResult,
}

/// Runs the large-mesh sharded workload with `samples` timed samples
/// per benchmark: a 64x64 mesh, west-first/transpose, serial vs one
/// shard per core.
///
/// # Panics
///
/// Panics if sharding changes the run length or the report — sharding
/// is a pure speed optimisation, so a divergence is a correctness bug,
/// not a perf result. Also panics if the engine silently falls back to
/// serial (the sharded figure would be a lie).
pub fn measure_engine_sharded(samples: usize) -> ShardedMeasurement {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The engine caps auto at one shard per core (MAX_SHARDS = 256,
    // never binding below 256 cores on a 4096-node mesh).
    let shards = host_cores.min(256);
    let mesh = Mesh::new_2d(64, 64);
    let wf = WestFirst::minimal();

    // Determinism first: the sharded report must equal the serial one.
    let (serial_report, serial_cycles) = mesh64_run(&mesh, &wf, 1);
    let (sharded_report, sharded_cycles) = mesh64_run(&mesh, &wf, 0);
    assert_eq!(
        serial_cycles, sharded_cycles,
        "sharding changed the run length"
    );
    let reports_identical = format!("{serial_report:?}") == format!("{sharded_report:?}");
    assert!(reports_identical, "sharding changed the report");

    let mut h = Harness::new().sample_size(samples);
    let serial = h
        .bench("engine/mesh64/west-first/transpose/shards=1", || {
            mesh64_run(&mesh, &wf, 1)
        })
        .clone();
    let sharded = h
        .bench("engine/mesh64/west-first/transpose/shards=auto", || {
            mesh64_run(&mesh, &wf, 0)
        })
        .clone();

    ShardedMeasurement {
        host_cores,
        shards,
        serial_cps: serial_cycles as f64 / serial.median_secs(),
        sharded_cps: sharded_cycles as f64 / sharded.median_secs(),
        speedup: serial.median_secs() / sharded.median_secs(),
        run_cycles: serial_cycles,
        reports_identical,
        serial,
        sharded,
    }
}

/// Renders `BENCH_engine.json` from the three engine measurements (the
/// one shape both the bench target and `bench_record` write).
pub fn render_engine_json(
    m: &EngineMeasurement,
    s: &ShardedMeasurement,
    p: &MmppMeasurement,
) -> String {
    JsonReport::new()
        .field_str("bench", "engine_throughput")
        .field_str(
            "workload",
            "mesh:16x16, transpose, load 0.08, warmup 1000 + measure 4000 + drain, seed 42",
        )
        .field_str(
            "table_cost_model",
            "table built once outside the timed loop and shared, as the sweep executor amortizes it across a series' cells",
        )
        .field_str(
            "baseline",
            "commit 1dec775 (pre-optimisation), same host and workload",
        )
        .field_num("run_cycles", m.run_cycles as f64)
        .result("west_first_table_on", &m.west_first_on)
        .result("west_first_table_off", &m.west_first_off)
        .result("xy_table_on", &m.xy_on)
        .field_num("west_first_cycles_per_sec", m.west_first_cps.round())
        .field_num(
            "west_first_cycles_per_sec_table_off",
            m.west_first_cps_table_off.round(),
        )
        .field_num("xy_cycles_per_sec", m.xy_cps.round())
        .field_num("baseline_west_first_cycles_per_sec", BASELINE_WEST_FIRST_CPS)
        .field_num("baseline_xy_cycles_per_sec", BASELINE_XY_CPS)
        .field_num(
            "west_first_speedup_vs_baseline",
            (m.west_first_cps / BASELINE_WEST_FIRST_CPS * 100.0).round() / 100.0,
        )
        .field_num(
            "xy_speedup_vs_baseline",
            (m.xy_cps / BASELINE_XY_CPS * 100.0).round() / 100.0,
        )
        .field_bool("reports_identical_table_on_vs_off", m.reports_identical)
        .field_str(
            "sharded_workload",
            "mesh:64x64, west-first, transpose, load 0.03, warmup 500 + measure 2000 + drain, seed 42",
        )
        .field_num("sharded_host_cores", s.host_cores as f64)
        .field_num("sharded_shards", s.shards as f64)
        .field_num("mesh64_run_cycles", s.run_cycles as f64)
        .result("mesh64_serial", &s.serial)
        .result("mesh64_sharded", &s.sharded)
        .field_num("mesh64_serial_cycles_per_sec", s.serial_cps.round())
        .field_num("engine_sharded_cycles_per_sec", s.sharded_cps.round())
        .field_num("sharded_speedup", round3(s.speedup))
        .field_bool("reports_identical_1_vs_auto_shards", s.reports_identical)
        .field_str(
            "mmpp_workload",
            "mesh:16x16, west-first, transpose, load 0.08 injected as mmpp:96,288 \
             (bursty on-off arrivals, same mean offered load), seed 42",
        )
        .field_num("mmpp_run_cycles", p.run_cycles as f64)
        .result("mmpp", &p.timing)
        .field_num("engine_mmpp_cycles_per_sec", p.mmpp_cps.round())
        .field_bool("reports_identical_mmpp_reruns", p.reports_identical)
        .field_str(
            "sharded_note",
            if s.host_cores == 1 {
                "single-core host: auto sharding resolves to one shard, so the sharded figure \
                 equals serial by construction; the >=2.5x target presumes a multi-core host — \
                 see bench/history.jsonl for the multi-core record"
            } else {
                "auto sharding runs one shard per core; serial and sharded reports are \
                 byte-identical, so the speedup is free of any accuracy trade"
            },
        )
        .render()
}

fn sweep_spec(pattern: &str) -> ExperimentSpec {
    let mut builder = ExperimentSpec::builder("mesh:16x16", pattern)
        .loads(SWEEP_LOADS)
        .config(
            SimConfig::paper()
                .warmup_cycles(1_000)
                .measure_cycles(4_000)
                .seed(9),
        );
    for algo in SWEEP_ALGORITHMS {
        builder = builder.algorithm(*algo);
    }
    builder.build().expect("a static bench spec resolves")
}

fn run_grid(threads: usize) -> Vec<SweepSeries> {
    let mut all: Vec<SweepSeries> = Vec::new();
    for pattern in SWEEP_PATTERNS {
        all.extend(sweep_spec(pattern).run(threads).expect("spec resolves"));
    }
    all
}

fn csv_bytes(series: &[SweepSeries]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_csv(series, &mut buf).expect("in-memory CSV");
    buf
}

/// The sweep-grid workload's measured results.
#[derive(Debug, Clone)]
pub struct SweepMeasurement {
    /// Hardware cores the host reports.
    pub host_cores: usize,
    /// Median serial (1-thread) wall time for the full grid, seconds.
    pub serial_secs: f64,
    /// Median 2-thread wall time.
    pub threads2_secs: f64,
    /// Median 8-thread wall time.
    pub threads8_secs: f64,
    /// serial / 2-thread.
    pub speedup_2: f64,
    /// serial / 8-thread.
    pub speedup_8: f64,
    /// Grid cells per serial second — the scheduler-independent
    /// throughput figure the regression gate tracks.
    pub cells_per_sec: f64,
    /// 1-thread and 8-thread runs produced identical CSV bytes.
    pub bytes_identical: bool,
}

/// The number of (algorithm, pattern, load) cells in the sweep grid.
pub fn sweep_grid_cells() -> usize {
    SWEEP_ALGORITHMS.len() * SWEEP_PATTERNS.len() * SWEEP_LOADS.len()
}

/// Runs the sweep-grid workload with `samples` timed samples per
/// thread count.
///
/// # Panics
///
/// Panics if the 8-thread bytes differ from the serial bytes —
/// determinism is a prerequisite for the timing to mean anything.
pub fn measure_sweep(samples: usize) -> SweepMeasurement {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Determinism first: the parallel bytes must equal the serial bytes.
    let serial_csv = csv_bytes(&run_grid(1));
    let bytes_identical = serial_csv == csv_bytes(&run_grid(8));
    assert!(bytes_identical, "thread count changed the bytes");

    let mut h = Harness::new().sample_size(samples);
    let serial_secs = h
        .bench("sweep/mesh16_grid/threads=1", || run_grid(1))
        .median_secs();
    let threads2_secs = h
        .bench("sweep/mesh16_grid/threads=2", || run_grid(2))
        .median_secs();
    let threads8_secs = h
        .bench("sweep/mesh16_grid/threads=8", || run_grid(8))
        .median_secs();

    SweepMeasurement {
        host_cores,
        serial_secs,
        threads2_secs,
        threads8_secs,
        speedup_2: serial_secs / threads2_secs,
        speedup_8: serial_secs / threads8_secs,
        cells_per_sec: sweep_grid_cells() as f64 / serial_secs,
        bytes_identical,
    }
}

/// Renders `BENCH_sweep.json` from a measurement.
pub fn render_sweep_json(m: &SweepMeasurement) -> String {
    JsonReport::new()
        .field_str("bench", "sweep_parallel")
        .field_str(
            "grid",
            &format!(
                "mesh:16x16, {} algorithms x (uniform, transpose) x {} loads, quick windows",
                SWEEP_ALGORITHMS.len(),
                SWEEP_LOADS.len()
            ),
        )
        .field_num("host_cores", m.host_cores as f64)
        .field_num("serial_secs", round4(m.serial_secs))
        .field_num("threads2_secs", round4(m.threads2_secs))
        .field_num("threads8_secs", round4(m.threads8_secs))
        .field_num("speedup_2_threads", round3(m.speedup_2))
        .field_num("speedup_8_threads", round3(m.speedup_8))
        .field_num("grid_cells", sweep_grid_cells() as f64)
        .field_num("cells_per_serial_sec", round3(m.cells_per_sec))
        .field_bool("bytes_identical_1_vs_8_threads", m.bytes_identical)
        .field_str(
            "note",
            "Executor schedules speculatively past each series' saturation cutoff, so on hosts with fewer hardware cores than workers the extra threads add work instead of overlapping it; the >=3x target presumes >=8 real cores.",
        )
        .render()
}

/// The synthesis workload's measured results.
#[derive(Debug, Clone)]
pub struct SynthMeasurement {
    /// Candidate orderings evaluated per timed run.
    pub candidates: usize,
    /// Candidates evaluated per second (single worker).
    pub candidates_per_sec: f64,
    /// Two untimed runs rendered byte-identical reports.
    pub reports_identical: bool,
    /// Raw timing for the synthesis run.
    pub timing: BenchResult,
}

/// Runs the synthesis workload with `samples` timed samples: a full
/// turn-prohibition search (24 candidates, seed 42, one worker) on a
/// 16-node dragonfly, the same topology the check.sh smoke uses.
///
/// # Panics
///
/// Panics if synthesis fails or two runs render different reports —
/// determinism is a prerequisite for the timing to mean anything.
pub fn measure_synth(samples: usize) -> SynthMeasurement {
    use turnroute::synth::{synthesize, GraphSpec, GraphTopology, SynthesisOptions};

    let topo = GraphTopology::new(&GraphSpec::dragonfly(4, 4)).expect("dragonfly builds");
    let opts = SynthesisOptions {
        seed: 42,
        candidates: 24,
        threads: 1,
    };

    // Determinism first: the same seed must render the same report.
    let a = synthesize(&topo, &opts).expect("dragonfly synthesizes");
    let b = synthesize(&topo, &opts).expect("dragonfly synthesizes");
    let reports_identical = a.report.render() == b.report.render();
    assert!(reports_identical, "synthesis report changed between runs");

    let mut h = Harness::new().sample_size(samples);
    let timing = h
        .bench("synth/dragonfly4x4/seed42/threads=1", || {
            synthesize(&topo, &opts).expect("dragonfly synthesizes")
        })
        .clone();

    SynthMeasurement {
        candidates: opts.candidates,
        candidates_per_sec: opts.candidates as f64 / timing.median_secs(),
        reports_identical,
        timing,
    }
}

fn round4(v: f64) -> f64 {
    (v * 1e4).round() / 1e4
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_matches_the_documented_workload() {
        assert_eq!(sweep_grid_cells(), 48);
        assert!(SWEEP_LOADS.windows(2).all(|w| w[0] < w[1]));
    }

    fn fake_result(name: &str, median_ns: f64) -> crate::timing::BenchResult {
        crate::timing::BenchResult {
            name: name.to_owned(),
            median_ns,
            mean_ns: median_ns,
            min_ns: median_ns,
            samples: 1,
            iters_per_sample: 1,
        }
    }

    #[test]
    fn engine_json_carries_the_sharded_metrics() {
        let m = EngineMeasurement {
            west_first_cps: 600_000.0,
            west_first_cps_table_off: 550_000.0,
            xy_cps: 700_000.0,
            run_cycles: 5_000,
            reports_identical: true,
            west_first_on: fake_result("wf-on", 1e6),
            west_first_off: fake_result("wf-off", 1e6),
            xy_on: fake_result("xy-on", 1e6),
        };
        let s = ShardedMeasurement {
            host_cores: 8,
            shards: 8,
            serial_cps: 40_000.0,
            sharded_cps: 120_000.0,
            speedup: 3.0,
            run_cycles: 2_500,
            reports_identical: true,
            serial: fake_result("mesh64-serial", 6e7),
            sharded: fake_result("mesh64-sharded", 2e7),
        };
        let p = MmppMeasurement {
            mmpp_cps: 500_000.0,
            run_cycles: 5_100,
            reports_identical: true,
            timing: fake_result("mmpp", 1e6),
        };
        let json = render_engine_json(&m, &s, &p);
        assert!(json.contains("\"engine_sharded_cycles_per_sec\": 120000"));
        assert!(json.contains("\"mesh64_serial_cycles_per_sec\": 40000"));
        assert!(json.contains("\"sharded_speedup\": 3"));
        assert!(json.contains("\"sharded_shards\": 8"));
        assert!(json.contains("\"reports_identical_1_vs_auto_shards\": true"));
        assert!(json.contains("one shard per core"));
        assert!(json.contains("\"engine_mmpp_cycles_per_sec\": 500000"));
        assert!(json.contains("\"reports_identical_mmpp_reruns\": true"));
        assert!(json.contains("mmpp:96,288"));
    }

    #[test]
    fn rendered_json_carries_the_gate_metrics() {
        let m = SweepMeasurement {
            host_cores: 1,
            serial_secs: 0.5,
            threads2_secs: 0.6,
            threads8_secs: 0.7,
            speedup_2: 0.5 / 0.6,
            speedup_8: 0.5 / 0.7,
            cells_per_sec: 96.0,
            bytes_identical: true,
        };
        let json = render_sweep_json(&m);
        assert!(json.contains("\"cells_per_serial_sec\": 96"));
        assert!(json.contains("\"host_cores\": 1"));
        assert!(json.contains("\"grid_cells\": 48"));
    }
}
