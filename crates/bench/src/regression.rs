//! The perf-regression gate: a committed trajectory of benchmark
//! records plus the check that fails CI when throughput drops.
//!
//! `bench/history.jsonl` holds one [`BenchRecord`] per line, appended
//! by `bench_record` each time the workloads are re-measured on the
//! reference host. [`check`] compares a fresh measurement against the
//! last committed record and fails when any tracked throughput metric
//! falls more than the tolerance (default 10%) below it — an absolute
//! gate, not a trend fit, so one bad commit cannot ratchet the
//! baseline down. [`render_dashboard`] turns the history into a
//! static, dependency-free HTML page with an inline-SVG trajectory
//! chart and the raw records as a table.

use std::fmt::Write as _;

use turnroute_experiment::json::{self, escape, Value};

/// Record layout version; bump when fields change meaning.
pub const RECORD_SCHEMA: u64 = 1;

/// The gate's default tolerance: fail below 90% of the last record.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// One measured point on the perf trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Record layout version ([`RECORD_SCHEMA`]).
    pub schema: u64,
    /// Unix seconds when the measurement ran.
    pub recorded_at_unix: u64,
    /// Hardware cores of the measuring host — context for absolute
    /// numbers; the gate only compares like-for-like trajectories.
    pub host_cores: u64,
    /// Engine cycles/sec, west-first/transpose, route table on.
    pub engine_west_first_cps: f64,
    /// Engine cycles/sec, xy/transpose, route table on.
    pub engine_xy_cps: f64,
    /// 64x64-mesh cycles/sec, serial engine (one shard). `0.0` in
    /// records written before the workload existed.
    pub engine_mesh64_serial_cps: f64,
    /// 64x64-mesh cycles/sec, cycle-barrier sharded arbitration at one
    /// shard per core. `0.0` in records written before the workload
    /// existed; the gate skips metrics with no prior measurement.
    pub engine_sharded_cps: f64,
    /// Engine cycles/sec on the 16x16 workload injected through the
    /// bursty MMPP arrival process (mmpp:96,288). `0.0` in records
    /// written before the workload existed; the gate skips metrics
    /// with no prior measurement.
    pub engine_mmpp_cps: f64,
    /// mesh64 serial time / sharded time.
    pub sharded_speedup: f64,
    /// Turn-prohibition synthesis: candidates evaluated per second on
    /// the 16-node dragonfly workload, one worker. `0.0` in records
    /// written before the workload existed; the gate skips metrics
    /// with no prior measurement.
    pub synth_candidates_per_sec: f64,
    /// Sweep-grid cells per serial second.
    pub sweep_cells_per_sec: f64,
    /// Serial wall time of the full sweep grid, seconds.
    pub sweep_serial_secs: f64,
    /// 8-thread wall time of the full sweep grid, seconds.
    pub sweep_threads8_secs: f64,
    /// serial / 8-thread.
    pub sweep_speedup_8_threads: f64,
    /// Free-form context (host, commit, why re-measured).
    pub note: String,
}

/// A gated metric: its name plus the extractor reading it off a record.
type GatedMetric = (&'static str, fn(&BenchRecord) -> f64);

/// The gate's tracked metrics: `(name, extractor)` for every metric
/// where *lower is a regression*.
const GATED_METRICS: &[GatedMetric] = &[
    ("engine_west_first_cps", |r| r.engine_west_first_cps),
    ("engine_xy_cps", |r| r.engine_xy_cps),
    ("engine_sharded_cps", |r| r.engine_sharded_cps),
    ("engine_mmpp_cps", |r| r.engine_mmpp_cps),
    ("sweep_cells_per_sec", |r| r.sweep_cells_per_sec),
    ("synth_candidates_per_sec", |r| r.synth_candidates_per_sec),
];

fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        let mut s = format!("{v:.4}");
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.push('0');
        }
        s
    }
}

impl BenchRecord {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"schema\":{},\"recorded_at_unix\":{},\"host_cores\":{},\
             \"engine_west_first_cps\":{},\"engine_xy_cps\":{},\
             \"engine_mesh64_serial_cps\":{},\"engine_sharded_cps\":{},\
             \"engine_mmpp_cps\":{},\
             \"sharded_speedup\":{},\"synth_candidates_per_sec\":{},\
             \"sweep_cells_per_sec\":{},\"sweep_serial_secs\":{},\
             \"sweep_threads8_secs\":{},\"sweep_speedup_8_threads\":{},\
             \"note\":{}}}",
            self.schema,
            self.recorded_at_unix,
            self.host_cores,
            num(self.engine_west_first_cps),
            num(self.engine_xy_cps),
            num(self.engine_mesh64_serial_cps),
            num(self.engine_sharded_cps),
            num(self.engine_mmpp_cps),
            num(self.sharded_speedup),
            num(self.synth_candidates_per_sec),
            num(self.sweep_cells_per_sec),
            num(self.sweep_serial_secs),
            num(self.sweep_threads8_secs),
            num(self.sweep_speedup_8_threads),
            escape(&self.note),
        )
    }

    /// Parses one history line.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, a missing field, or an unknown schema.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let doc = json::parse(line).map_err(|e| format!("bad history line: {e}"))?;
        let u = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("history record lacks '{key}'"))
        };
        let f = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("history record lacks '{key}'"))
        };
        // Metrics added after the first records were committed: absent
        // means "not measured yet" (0.0), which the gate skips.
        let f_opt = |key: &str| -> f64 { doc.get(key).and_then(Value::as_f64).unwrap_or(0.0) };
        let schema = u("schema")?;
        if schema != RECORD_SCHEMA {
            return Err(format!(
                "history record schema {schema} unsupported (expected {RECORD_SCHEMA})"
            ));
        }
        Ok(BenchRecord {
            schema,
            recorded_at_unix: u("recorded_at_unix")?,
            host_cores: u("host_cores")?,
            engine_west_first_cps: f("engine_west_first_cps")?,
            engine_xy_cps: f("engine_xy_cps")?,
            engine_mesh64_serial_cps: f_opt("engine_mesh64_serial_cps"),
            engine_sharded_cps: f_opt("engine_sharded_cps"),
            engine_mmpp_cps: f_opt("engine_mmpp_cps"),
            sharded_speedup: f_opt("sharded_speedup"),
            synth_candidates_per_sec: f_opt("synth_candidates_per_sec"),
            sweep_cells_per_sec: f("sweep_cells_per_sec")?,
            sweep_serial_secs: f("sweep_serial_secs")?,
            sweep_threads8_secs: f("sweep_threads8_secs")?,
            sweep_speedup_8_threads: f("sweep_speedup_8_threads")?,
            note: doc
                .get("note")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_owned(),
        })
    }
}

/// Parses a whole `history.jsonl` (blank lines skipped).
///
/// # Errors
///
/// Fails on the first unparseable line, with its line number.
pub fn parse_history(text: &str) -> Result<Vec<BenchRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| BenchRecord::from_json_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Compares `current` against `last`; returns the list of violated
/// metrics (empty = pass). A metric fails when it drops below
/// `last * (1 - tolerance)`; improvements never fail.
pub fn check(last: &BenchRecord, current: &BenchRecord, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for (name, get) in GATED_METRICS {
        let was = get(last);
        let now = get(current);
        if was <= 0.0 {
            // The last record predates this metric (or never measured
            // it); there is no baseline to regress against.
            continue;
        }
        let floor = was * (1.0 - tolerance);
        if now < floor {
            violations.push(format!(
                "{name} regressed {:.1}%: {} -> {} (floor {} at {:.0}% tolerance)",
                (1.0 - now / was) * 100.0,
                num(was),
                num(now),
                num(floor),
                tolerance * 100.0,
            ));
        }
    }
    violations
}

/// `YYYY-MM-DD` for a unix timestamp (proleptic Gregorian, UTC).
fn date_of(unix_secs: u64) -> String {
    // Howard Hinnant's civil-from-days algorithm.
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// One chart series: label plus per-record values.
struct Series<'a> {
    label: &'a str,
    css_var: &'a str,
    values: Vec<f64>,
}

/// Renders the static trajectory dashboard: one indexed line chart
/// (every series as % of its first record, so one axis serves all
/// the metrics) plus the raw records as a table. A series whose first
/// record predates its metric (value 0) is left off the chart — it has
/// no base to index against — but still shows in the table.
/// Self-contained HTML — inline SVG and CSS, no scripts, light and
/// dark via `prefers-color-scheme`.
pub fn render_dashboard(history: &[BenchRecord]) -> String {
    let mut series = vec![
        Series {
            label: "engine west-first (cycles/s)",
            css_var: "--s1",
            values: history.iter().map(|r| r.engine_west_first_cps).collect(),
        },
        Series {
            label: "engine xy (cycles/s)",
            css_var: "--s2",
            values: history.iter().map(|r| r.engine_xy_cps).collect(),
        },
        Series {
            label: "sweep grid (cells/s)",
            css_var: "--s3",
            values: history.iter().map(|r| r.sweep_cells_per_sec).collect(),
        },
        Series {
            label: "engine sharded 64x64 (cycles/s)",
            css_var: "--s4",
            values: history.iter().map(|r| r.engine_sharded_cps).collect(),
        },
        Series {
            label: "synth (candidates/s)",
            css_var: "--s5",
            values: history.iter().map(|r| r.synth_candidates_per_sec).collect(),
        },
        Series {
            label: "engine mmpp (cycles/s)",
            css_var: "--s6",
            values: history.iter().map(|r| r.engine_mmpp_cps).collect(),
        },
    ];
    series.retain(|s| s.values.first().copied().unwrap_or(0.0) > 0.0);

    let mut out = String::new();
    out.push_str(DASHBOARD_HEAD);
    let _ = writeln!(
        out,
        "<p class=\"sub\">{} record(s) · tracked metrics indexed to the first record = 100% \
         · gate fails CI below 90% of the last record</p>",
        history.len()
    );
    out.push_str(&render_chart(history, &series));
    out.push_str(&render_table(history));
    out.push_str("</main></body></html>\n");
    out
}

/// Chart geometry: outer size and the plot margins.
const W: f64 = 880.0;
const H: f64 = 360.0;
const ML: f64 = 56.0;
const MR: f64 = 200.0; // room for direct labels at line ends
const MT: f64 = 18.0;
const MB: f64 = 40.0;

fn render_chart(history: &[BenchRecord], series: &[Series<'_>]) -> String {
    if history.is_empty() {
        return "<p class=\"sub\">No records yet — run <code>scripts/bench.sh</code> \
                to record the first point.</p>\n"
            .to_owned();
    }

    // Index every series to its first value = 100%.
    let indexed: Vec<Vec<f64>> = series
        .iter()
        .map(|s| {
            let base = s.values.first().copied().unwrap_or(1.0);
            s.values
                .iter()
                .map(|&v| if base > 0.0 { v / base * 100.0 } else { 100.0 })
                .collect()
        })
        .collect();
    let lo = indexed
        .iter()
        .flatten()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min(95.0);
    let hi = indexed
        .iter()
        .flatten()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(105.0);
    let pad = (hi - lo) * 0.08;
    let (lo, hi) = (lo - pad, hi + pad);

    let n = history.len();
    let x = |i: usize| -> f64 {
        if n == 1 {
            ML + (W - ML - MR) / 2.0
        } else {
            ML + (W - ML - MR) * i as f64 / (n - 1) as f64
        }
    };
    let y = |v: f64| -> f64 { MT + (H - MT - MB) * (1.0 - (v - lo) / (hi - lo)) };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<figure><figcaption>Throughput trajectory (higher is better)</figcaption>\n\
         <svg viewBox=\"0 0 {W} {H}\" role=\"img\" \
         aria-label=\"Benchmark throughput trajectory, indexed to the first record\">"
    );

    // Horizontal gridlines + axis labels at ~5 round ticks.
    let step = ((hi - lo) / 5.0).max(1.0).round();
    let mut tick = (lo / step).ceil() * step;
    while tick <= hi {
        let ty = y(tick);
        let _ = writeln!(
            svg,
            "<line class=\"grid\" x1=\"{ML}\" y1=\"{ty:.1}\" x2=\"{:.1}\" y2=\"{ty:.1}\"/>\
             <text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{tick:.0}%</text>",
            W - MR,
            ML - 8.0,
            ty + 4.0,
        );
        tick += step;
    }
    // X labels: first, last, and middle record dates.
    let mut label_at: Vec<usize> = vec![0];
    if n > 2 {
        label_at.push(n / 2);
    }
    if n > 1 {
        label_at.push(n - 1);
    }
    for &i in &label_at {
        let _ = writeln!(
            svg,
            "<text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            x(i),
            H - MB + 24.0,
            date_of(history[i].recorded_at_unix),
        );
    }

    // Lines, then markers (with a surface ring), then direct labels.
    for (s, vals) in series.iter().zip(&indexed) {
        if n > 1 {
            let points: Vec<String> = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| format!("{:.1},{:.1}", x(i), y(v)))
                .collect();
            let _ = writeln!(
                svg,
                "<polyline class=\"line\" style=\"stroke:var({})\" points=\"{}\"/>",
                s.css_var,
                points.join(" ")
            );
        }
        for (i, &v) in vals.iter().enumerate() {
            let _ = writeln!(
                svg,
                "<circle class=\"marker\" style=\"fill:var({})\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\">\
                 <title>{} · {}: {} ({v:.1}%)</title></circle>",
                s.css_var,
                x(i),
                y(v),
                date_of(history[i].recorded_at_unix),
                html_escape(s.label),
                num(s.values[i]),
            );
        }
        let last = vals[n - 1];
        let _ = writeln!(
            svg,
            "<text class=\"dlabel\" x=\"{:.1}\" y=\"{:.1}\">{}</text>",
            x(n - 1) + 10.0,
            y(last) + 4.0,
            html_escape(s.label),
        );
    }
    svg.push_str("</svg></figure>\n");

    // Legend (color is never the only identity: direct labels above,
    // table below).
    svg.push_str("<ul class=\"legend\">");
    for s in series {
        let _ = write!(
            svg,
            "<li><span class=\"swatch\" style=\"background:var({})\"></span>{}</li>",
            s.css_var,
            html_escape(s.label)
        );
    }
    svg.push_str("</ul>\n");
    svg
}

fn render_table(history: &[BenchRecord]) -> String {
    let mut t = String::from(
        "<h2>Records</h2>\n<table>\n<thead><tr><th>#</th><th>date</th><th>cores</th>\
         <th>engine west-first (cycles/s)</th><th>engine xy (cycles/s)</th>\
         <th>sharded 64x64 (cycles/s)</th><th>shard speedup</th>\
         <th>mmpp (cycles/s)</th>\
         <th>synth (cand/s)</th>\
         <th>sweep (cells/s)</th><th>sweep serial (s)</th><th>8-thread (s)</th>\
         <th>speedup ×8</th><th>note</th></tr></thead>\n<tbody>\n",
    );
    // Pre-sharding records carry 0 for the sharded metrics: show a dash
    // rather than a number that looks like a measurement.
    let or_dash = |v: f64, scale: f64| {
        if v > 0.0 {
            num((v * scale).round() / scale)
        } else {
            "—".to_owned()
        }
    };
    for (i, r) in history.iter().enumerate() {
        let _ = writeln!(
            t,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td></tr>",
            i + 1,
            date_of(r.recorded_at_unix),
            r.host_cores,
            num(r.engine_west_first_cps.round()),
            num(r.engine_xy_cps.round()),
            or_dash(r.engine_sharded_cps, 1.0),
            or_dash(r.sharded_speedup, 1e3),
            or_dash(r.engine_mmpp_cps, 1.0),
            or_dash(r.synth_candidates_per_sec, 10.0),
            num((r.sweep_cells_per_sec * 10.0).round() / 10.0),
            num((r.sweep_serial_secs * 1e4).round() / 1e4),
            num((r.sweep_threads8_secs * 1e4).round() / 1e4),
            num((r.sweep_speedup_8_threads * 1e3).round() / 1e3),
            html_escape(&r.note),
        );
    }
    t.push_str("</tbody>\n</table>\n");
    t
}

/// Document head: layout, the validated categorical palette (slots
/// 1–4) in light and dark steps, recessive grid/ticks, and mark specs
/// (2px lines, 8px markers with a 2px surface ring).
const DASHBOARD_HEAD: &str = r#"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>turnroute bench trajectory</title>
<style>
:root {
  --surface: #ffffff;
  --ink: #1f2328;
  --ink-muted: #59626b;
  --grid: #e4e7eb;
  --s1: #2a78d6; /* blue */
  --s2: #eb6834; /* orange */
  --s3: #1baf7a; /* aqua-green */
  --s4: #8a56d6; /* violet */
  --s5: #c2417e; /* magenta */
  --s6: #8c7a1c; /* olive */
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #15181b;
    --ink: #e6e9ec;
    --ink-muted: #9aa4ad;
    --grid: #2b3137;
    --s1: #3987e5;
    --s2: #d95926;
    --s3: #199e70;
    --s4: #9a6ae0;
    --s5: #d05a8f;
    --s6: #b7a33c;
  }
}
body {
  margin: 0;
  background: var(--surface);
  color: var(--ink);
  font: 15px/1.5 system-ui, sans-serif;
}
main { max-width: 960px; margin: 0 auto; padding: 24px 16px 48px; }
h1 { font-size: 1.3rem; margin: 0 0 4px; }
h2 { font-size: 1.05rem; margin: 28px 0 8px; }
.sub { color: var(--ink-muted); margin: 0 0 16px; }
figure { margin: 0; }
figcaption { color: var(--ink-muted); font-size: 0.85rem; margin-bottom: 6px; }
svg { width: 100%; height: auto; }
.grid { stroke: var(--grid); stroke-width: 1; }
.tick, .dlabel { fill: var(--ink-muted); font: 12px system-ui, sans-serif; }
.dlabel { fill: var(--ink); }
.line { fill: none; stroke-width: 2; }
.marker { stroke: var(--surface); stroke-width: 2; }
.legend { list-style: none; display: flex; gap: 18px; padding: 0; margin: 8px 0 0; }
.legend li { display: flex; align-items: center; gap: 6px; color: var(--ink); font-size: 0.85rem; }
.swatch { width: 12px; height: 12px; border-radius: 3px; display: inline-block; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: right; padding: 5px 8px; border-bottom: 1px solid var(--grid); }
th:first-child, td:first-child, th:last-child, td:last-child { text-align: left; }
th { color: var(--ink-muted); font-weight: 600; }
code { background: var(--grid); padding: 1px 4px; border-radius: 3px; }
</style>
</head>
<body>
<main>
<h1>turnroute bench trajectory</h1>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn record(wf: f64, xy: f64, cells: f64) -> BenchRecord {
        BenchRecord {
            schema: RECORD_SCHEMA,
            recorded_at_unix: 1_754_700_000,
            host_cores: 1,
            engine_west_first_cps: wf,
            engine_xy_cps: xy,
            engine_mesh64_serial_cps: wf / 16.0,
            engine_sharded_cps: wf / 4.0,
            engine_mmpp_cps: wf / 2.0,
            sharded_speedup: 4.0,
            synth_candidates_per_sec: cells * 2.0,
            sweep_cells_per_sec: cells,
            sweep_serial_secs: 0.62,
            sweep_threads8_secs: 0.93,
            sweep_speedup_8_threads: 0.667,
            note: "unit test".to_owned(),
        }
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let r = record(250_000.0, 300_000.5, 77.42);
        let line = r.to_json_line();
        assert!(!line.contains('\n'), "one record per line");
        let back = BenchRecord::from_json_line(&line).unwrap();
        assert_eq!(back, r);

        let history = format!("{line}\n\n{line}\n");
        assert_eq!(parse_history(&history).unwrap().len(), 2);
    }

    #[test]
    fn unknown_schema_and_missing_fields_are_rejected() {
        let future =
            record(1.0, 1.0, 1.0)
                .to_json_line()
                .replacen("\"schema\":1", "\"schema\":9", 1);
        assert!(BenchRecord::from_json_line(&future)
            .unwrap_err()
            .contains("schema 9"));
        assert!(BenchRecord::from_json_line("{\"schema\":1}")
            .unwrap_err()
            .contains("lacks"));
    }

    #[test]
    fn check_passes_flat_and_improved_runs() {
        let last = record(100_000.0, 120_000.0, 80.0);
        assert!(check(&last, &last, DEFAULT_TOLERANCE).is_empty());
        let faster = record(130_000.0, 150_000.0, 95.0);
        assert!(check(&last, &faster, DEFAULT_TOLERANCE).is_empty());
        // A dip inside the tolerance also passes.
        let wobble = record(92_000.0, 111_000.0, 73.0);
        assert!(check(&last, &wobble, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn check_fails_a_synthetic_regression_beyond_tolerance() {
        let last = record(100_000.0, 120_000.0, 80.0);
        // One metric 15% down: exactly the synthetic case the gate
        // must catch. (record() derives the sharded and mmpp metrics
        // from the west-first one; pin them so only one metric moves.)
        let mut regressed = record(85_000.0, 121_000.0, 80.0);
        regressed.engine_sharded_cps = last.engine_sharded_cps;
        regressed.engine_mmpp_cps = last.engine_mmpp_cps;
        let violations = check(&last, &regressed, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("engine_west_first_cps"));
        assert!(violations[0].contains("15.0%"));
        // All six down hard: all six reported.
        let collapsed = record(50_000.0, 60_000.0, 40.0);
        assert_eq!(check(&last, &collapsed, DEFAULT_TOLERANCE).len(), 6);
    }

    #[test]
    fn pre_sharding_records_parse_and_are_not_gated() {
        // A history line written before the sharded workload existed:
        // no mesh64/sharded fields at all.
        let old = "{\"schema\":1,\"recorded_at_unix\":1754700000,\"host_cores\":1,\
                   \"engine_west_first_cps\":100000,\"engine_xy_cps\":120000,\
                   \"sweep_cells_per_sec\":80,\"sweep_serial_secs\":0.62,\
                   \"sweep_threads8_secs\":0.93,\"sweep_speedup_8_threads\":0.667,\
                   \"note\":\"pre-sharding\"}";
        let last = BenchRecord::from_json_line(old).unwrap();
        assert_eq!(last.engine_sharded_cps, 0.0);
        assert_eq!(last.engine_mesh64_serial_cps, 0.0);
        assert_eq!(last.engine_mmpp_cps, 0.0);
        // The gate has no sharded baseline to compare against, so a
        // fresh record with any sharded figure passes that metric.
        let current = record(100_000.0, 120_000.0, 80.0);
        assert!(check(&last, &current, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn dashboard_renders_chart_legend_and_table() {
        let history = vec![
            record(100_000.0, 120_000.0, 80.0),
            record(110_000.0, 118_000.0, 85.0),
            record(125_000.0, 130_000.0, 90.0),
        ];
        let html = render_dashboard(&history);
        assert!(html.contains("<svg"));
        assert!(
            html.contains("polyline"),
            "multi-record history draws lines"
        );
        assert!(html.contains("prefers-color-scheme: dark"));
        assert!(html.contains("engine west-first"));
        assert!(html.contains("class=\"legend\""));
        // Table view with one row per record.
        assert_eq!(html.matches("<tr><td>").count(), 3);
        assert!(html.contains(&date_of(1_754_700_000)));
    }

    #[test]
    fn dashboard_handles_empty_and_single_record_histories() {
        let empty = render_dashboard(&[]);
        assert!(empty.contains("No records yet"));
        let single = render_dashboard(&[record(1.0, 2.0, 3.0)]);
        assert!(single.contains("<circle"));
        assert!(!single.contains("polyline"));
    }

    #[test]
    fn dates_convert_correctly() {
        assert_eq!(date_of(0), "1970-01-01");
        assert_eq!(date_of(86_400), "1970-01-02");
        assert_eq!(date_of(1_754_700_000), "2025-08-09");
    }
}
