//! Hot-spot traffic (Section 1's motivation for adaptiveness): 10% of
//! messages target one node, the rest are uniform. Adaptive algorithms
//! route around the congested region.

use turnroute::experiment::ExperimentSpec;
use turnroute_bench::{run_spec, RunArgs};

fn main() {
    let args = RunArgs::from_args();
    // Node 136 is the center (8, 8) of the 16x16 mesh. The hot node's
    // ejection channel caps total throughput early; sweep low loads
    // where the interesting differences live.
    let spec = ExperimentSpec::builder("mesh:16x16", "hotspot:136,10")
        .algorithm_as("xy", "xy")
        .algorithm("west-first")
        .algorithm("negative-first")
        .loads(&[0.005, 0.01, 0.015, 0.02, 0.03, 0.04, 0.06])
        .config(args.scale.config())
        .build()
        .expect("a static regenerator spec resolves");
    run_spec("Hot-spot traffic (10% to the center)", &spec, args);
}
