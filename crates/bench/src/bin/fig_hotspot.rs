//! Hot-spot traffic (Section 1's motivation for adaptiveness): 10% of
//! messages target one node, the rest are uniform. Adaptive algorithms
//! route around the congested region.

use turnroute_bench::{run_figure, Scale};
use turnroute_core::{DimensionOrder, NegativeFirst, RoutingAlgorithm, WestFirst};
use turnroute_sim::patterns::Hotspot;
use turnroute_topology::{Mesh, Topology};

fn main() {
    let scale = Scale::from_args();
    let mesh = Mesh::new_2d(16, 16);
    let hotspot = Hotspot::new(mesh.node_at(&[8, 8].into()), 0.10);
    let xy = DimensionOrder::new();
    let wf = WestFirst::minimal();
    let nf = NegativeFirst::minimal();
    let algorithms: Vec<(&str, &dyn RoutingAlgorithm)> = vec![
        ("xy", &xy),
        ("west-first", &wf),
        ("negative-first", &nf),
    ];
    // The hot node's ejection channel caps total throughput early;
    // sweep low loads where the interesting differences live.
    let loads = [0.005, 0.01, 0.015, 0.02, 0.03, 0.04, 0.06];
    run_figure(
        "Hot-spot traffic (10% to the center)",
        &mesh,
        &algorithms,
        &hotspot,
        &loads,
        scale,
    );
}
