//! Figure 16: latency vs. throughput for **reverse-flip** traffic in a
//! binary 8-cube.
//!
//! Expected shape (paper): the partially adaptive algorithms sustain
//! about four times the throughput of e-cube — the largest win in the
//! paper, and overall the highest sustainable throughput of the
//! hypercube experiments.

use turnroute_bench::{run_figure, Scale, CUBE_LOADS};
use turnroute_core::{Abonf, Abopl, DimensionOrder, PCube, RoutingAlgorithm};
use turnroute_sim::patterns::ReverseFlip;
use turnroute_topology::Hypercube;

fn main() {
    let scale = Scale::from_args();
    let cube = Hypercube::new(8);
    let ecube = DimensionOrder::new();
    let abonf = Abonf::with_dims(8, true);
    let abopl = Abopl::with_dims(8, true);
    let pcube = PCube::minimal();
    let algorithms: Vec<(&str, &dyn RoutingAlgorithm)> = vec![
        ("e-cube", &ecube),
        ("abonf", &abonf),
        ("abopl", &abopl),
        ("negative-first", &pcube),
    ];
    run_figure(
        "Figure 16: reverse-flip traffic",
        &cube,
        &algorithms,
        &ReverseFlip,
        CUBE_LOADS,
        scale,
    );
}
