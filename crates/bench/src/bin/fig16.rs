//! Figure 16: latency vs. throughput for **reverse-flip** traffic in a
//! binary 8-cube.
//!
//! Expected shape (paper): the partially adaptive algorithms sustain
//! about four times the throughput of e-cube — the largest win in the
//! paper, and overall the highest sustainable throughput of the
//! hypercube experiments.

use turnroute::experiment::ExperimentSpec;
use turnroute_bench::{run_spec, RunArgs, CUBE_LOADS};

fn main() {
    let args = RunArgs::from_args();
    let spec = ExperimentSpec::builder("hypercube:8", "reverse-flip")
        .algorithm_as("e-cube", "e-cube")
        .algorithm("abonf")
        .algorithm("abopl")
        .algorithm_as("negative-first", "p-cube")
        .loads(CUBE_LOADS)
        .config(args.scale.config())
        .build()
        .expect("a static regenerator spec resolves");
    run_spec("Figure 16: reverse-flip traffic", &spec, args);
}
