//! Extension figure (Section 4.2): torus routing with and without extra
//! channels on an 8-ary 2-cube under uniform traffic. The channel-free
//! extensions (negative-first with classified wraparounds; first-hop
//! wraparound) are strictly nonminimal; the dateline scheme buys
//! minimal routing with one extra lane per dimension.

use turnroute_bench::Scale;
use turnroute_core::{FirstHopWraparound, NegativeFirst, NegativeFirstTorus};
use turnroute_sim::patterns::Uniform;
use turnroute_vc::{sweep_vc, DatelineDimensionOrder, SingleClass, VcRoutingAlgorithm};
use turnroute_topology::{Topology, Torus};

fn main() {
    let scale = Scale::from_args();
    let torus = Torus::new(8, 2);
    let config = scale.config();
    let loads = [0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40];

    let nft = SingleClass::new(NegativeFirstTorus::new(&torus));
    let fhw = SingleClass::new(FirstHopWraparound::new(
        &torus,
        NegativeFirst::with_dims(2, true),
    ));
    let dateline = DatelineDimensionOrder::new();
    let algos: Vec<(&str, &dyn VcRoutingAlgorithm)> = vec![
        ("negative-first-torus", &nft),
        ("first-hop-wrap", &fhw),
        ("dateline (2 lanes)", &dateline),
    ];

    eprintln!("# torus routing, uniform traffic on {} ({scale:?} scale)", torus.label());
    println!("algorithm,pattern,offered_load,throughput_flits_per_usec,avg_latency_usec,p95_latency_usec,avg_hops,sustainable");
    for &(name, algo) in &algos {
        let mut series = sweep_vc(&torus, algo, &Uniform, &config, &loads);
        series.algorithm = name.to_owned();
        print!("{}", series.to_csv());
        eprintln!(
            "#   {:<22} max sustainable {:>8.1} flits/usec, avg hops {:?}",
            name,
            series.max_sustainable_throughput(),
            series.points.first().and_then(|p| p.avg_hops).map(|h| (h * 100.0).round() / 100.0)
        );
    }
    eprintln!("# The dateline scheme's hop counts equal the torus distance (minimal);");
    eprintln!("# the channel-free algorithms pay extra hops for deadlock freedom.");
}
