//! Extension figure (Section 4.2): torus routing with and without extra
//! channels on an 8-ary 2-cube under uniform traffic. The channel-free
//! extensions (negative-first with classified wraparounds; first-hop
//! wraparound) are strictly nonminimal; the dateline scheme buys
//! minimal routing with one extra lane per dimension.

use turnroute::experiment::{Engine, ExperimentSpec};
use turnroute_bench::{run_spec, RunArgs};

fn main() {
    let args = RunArgs::from_args();
    let spec = ExperimentSpec::builder("torus:8,2", "uniform")
        .algorithm("negative-first-torus")
        .algorithm_as("first-hop-wrap", "first-hop-wrap")
        .algorithm_as("dateline (2 lanes)", "dateline")
        .loads(&[0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40])
        .config(args.scale.config())
        .engine(Engine::VirtualChannel)
        .build()
        .expect("a static regenerator spec resolves");
    run_spec("torus routing, uniform traffic", &spec, args);
    eprintln!("# The dateline scheme's hop counts equal the torus distance (minimal);");
    eprintln!("# the channel-free algorithms pay extra hops for deadlock freedom.");
}
