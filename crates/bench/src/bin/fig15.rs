//! Figure 15: latency vs. throughput for **matrix-transpose** traffic in
//! a binary 8-cube — e-cube vs. the partially adaptive algorithms
//! (ABONF, ABOPL, and negative-first, whose hypercube form is p-cube).
//!
//! Expected shape (paper): the partially adaptive algorithms sustain
//! about twice the throughput of e-cube.

use turnroute::experiment::ExperimentSpec;
use turnroute_bench::{run_spec, RunArgs, CUBE_LOADS};

fn main() {
    let args = RunArgs::from_args();
    let spec = ExperimentSpec::builder("hypercube:8", "hypercube-transpose")
        .algorithm_as("e-cube", "e-cube")
        .algorithm("abonf")
        .algorithm("abopl")
        .algorithm_as("negative-first", "p-cube")
        .loads(CUBE_LOADS)
        .config(args.scale.config())
        .build()
        .expect("a static regenerator spec resolves");
    run_spec("Figure 15: matrix-transpose traffic", &spec, args);
}
