//! Figure 15: latency vs. throughput for **matrix-transpose** traffic in
//! a binary 8-cube — e-cube vs. the partially adaptive algorithms
//! (ABONF, ABOPL, and negative-first, whose hypercube form is p-cube).
//!
//! Expected shape (paper): the partially adaptive algorithms sustain
//! about twice the throughput of e-cube.

use turnroute_bench::{run_figure, Scale, CUBE_LOADS};
use turnroute_core::{Abonf, Abopl, DimensionOrder, PCube, RoutingAlgorithm};
use turnroute_sim::patterns::HypercubeTranspose;
use turnroute_topology::Hypercube;

fn main() {
    let scale = Scale::from_args();
    let cube = Hypercube::new(8);
    let ecube = DimensionOrder::new();
    let abonf = Abonf::with_dims(8, true);
    let abopl = Abopl::with_dims(8, true);
    let pcube = PCube::minimal();
    let algorithms: Vec<(&str, &dyn RoutingAlgorithm)> = vec![
        ("e-cube", &ecube),
        ("abonf", &abonf),
        ("abopl", &abopl),
        ("negative-first", &pcube),
    ];
    run_figure(
        "Figure 15: matrix-transpose traffic",
        &cube,
        &algorithms,
        &HypercubeTranspose,
        CUBE_LOADS,
        scale,
    );
}
