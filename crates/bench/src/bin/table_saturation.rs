//! Section 6's throughput-ratio claims (E9 in DESIGN.md):
//!
//! * transpose: partially adaptive algorithms sustain ~2x the
//!   nonadaptive throughput (mesh and cube);
//! * reverse-flip: ~4x e-cube;
//! * best mesh point (negative-first / transpose) ~1.3x the second best
//!   (xy / uniform);
//! * best cube point (adaptive / reverse-flip) ~1.5x the second best
//!   (e-cube / uniform).

use turnroute_bench::{ratio, run_figure, Scale, CUBE_LOADS, MESH_LOADS};
use turnroute_core::{
    Abonf, Abopl, DimensionOrder, NegativeFirst, PCube, RoutingAlgorithm, WestFirst,
};
use turnroute_sim::patterns::{HypercubeTranspose, ReverseFlip, Transpose, Uniform};
use turnroute_sim::SweepSeries;
use turnroute_topology::{Hypercube, Mesh};

fn best(series: &[SweepSeries]) -> Vec<(String, f64)> {
    series
        .iter()
        .map(|s| (s.algorithm.clone(), s.max_sustainable_throughput()))
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    let mesh = Mesh::new_2d(16, 16);
    let cube = Hypercube::new(8);

    let xy = DimensionOrder::new();
    let wf = WestFirst::minimal();
    let nf = NegativeFirst::minimal();
    let mesh_algos: Vec<(&str, &dyn RoutingAlgorithm)> =
        vec![("xy", &xy), ("west-first", &wf), ("negative-first", &nf)];

    let ecube = DimensionOrder::new();
    let abonf = Abonf::with_dims(8, true);
    let abopl = Abopl::with_dims(8, true);
    let pcube = PCube::minimal();
    let cube_algos: Vec<(&str, &dyn RoutingAlgorithm)> = vec![
        ("e-cube", &ecube),
        ("abonf", &abonf),
        ("abopl", &abopl),
        ("negative-first", &pcube),
    ];

    let mesh_uniform = best(&run_figure(
        "saturation: mesh/uniform", &mesh, &mesh_algos, &Uniform, MESH_LOADS, scale,
    ));
    let mesh_transpose = best(&run_figure(
        "saturation: mesh/transpose", &mesh, &mesh_algos, &Transpose, MESH_LOADS, scale,
    ));
    let cube_uniform = best(&run_figure(
        "saturation: cube/uniform", &cube, &cube_algos, &Uniform, CUBE_LOADS, scale,
    ));
    let cube_transpose = best(&run_figure(
        "saturation: cube/transpose",
        &cube,
        &cube_algos,
        &HypercubeTranspose,
        CUBE_LOADS,
        scale,
    ));
    let cube_flip = best(&run_figure(
        "saturation: cube/reverse-flip", &cube, &cube_algos, &ReverseFlip, CUBE_LOADS, scale,
    ));

    let get = |table: &[(String, f64)], name: &str| {
        table.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0.0)
    };
    let best_adaptive = |table: &[(String, f64)]| {
        table
            .iter()
            .filter(|(n, _)| n != "xy" && n != "e-cube")
            .map(|&(_, v)| v)
            .fold(0.0, f64::max)
    };

    eprintln!();
    eprintln!("# Paper claim vs. measured:");
    eprintln!(
        "#   mesh transpose, adaptive vs xy:        {:.2}x (paper ~2x)",
        ratio(best_adaptive(&mesh_transpose), get(&mesh_transpose, "xy"))
    );
    eprintln!(
        "#   cube transpose, adaptive vs e-cube:    {:.2}x (paper ~2x)",
        ratio(best_adaptive(&cube_transpose), get(&cube_transpose, "e-cube"))
    );
    eprintln!(
        "#   cube reverse-flip, adaptive vs e-cube: {:.2}x (paper ~4x)",
        ratio(best_adaptive(&cube_flip), get(&cube_flip, "e-cube"))
    );
    eprintln!(
        "#   mesh best (nf/transpose) vs xy/uniform: {:.2}x (paper ~1.3x)",
        ratio(get(&mesh_transpose, "negative-first"), get(&mesh_uniform, "xy"))
    );
    eprintln!(
        "#   cube best (adaptive/flip) vs e-cube/uniform: {:.2}x (paper ~1.5x)",
        ratio(best_adaptive(&cube_flip), get(&cube_uniform, "e-cube"))
    );
}
