//! Section 6's throughput-ratio claims (E9 in DESIGN.md):
//!
//! * transpose: partially adaptive algorithms sustain ~2x the
//!   nonadaptive throughput (mesh and cube);
//! * reverse-flip: ~4x e-cube;
//! * best mesh point (negative-first / transpose) ~1.3x the second best
//!   (xy / uniform);
//! * best cube point (adaptive / reverse-flip) ~1.5x the second best
//!   (e-cube / uniform).

use turnroute::experiment::ExperimentSpec;
use turnroute_bench::{ratio, run_specs, RunArgs, CUBE_LOADS, MESH_LOADS};
use turnroute_sim::SweepSeries;

fn best(series: &[SweepSeries]) -> Vec<(String, f64)> {
    series
        .iter()
        .map(|s| (s.algorithm.clone(), s.max_sustainable_throughput()))
        .collect()
}

fn mesh_spec(pattern: &str, args: RunArgs) -> ExperimentSpec {
    ExperimentSpec::builder("mesh:16x16", pattern)
        .algorithm_as("xy", "xy")
        .algorithm("west-first")
        .algorithm("negative-first")
        .loads(MESH_LOADS)
        .config(args.scale.config())
        .build()
        .expect("a static regenerator spec resolves")
}

fn cube_spec(pattern: &str, args: RunArgs) -> ExperimentSpec {
    ExperimentSpec::builder("hypercube:8", pattern)
        .algorithm_as("e-cube", "e-cube")
        .algorithm("abonf")
        .algorithm("abopl")
        .algorithm_as("negative-first", "p-cube")
        .loads(CUBE_LOADS)
        .config(args.scale.config())
        .build()
        .expect("a static regenerator spec resolves")
}

fn main() {
    let args = RunArgs::from_args();
    let specs = vec![
        mesh_spec("uniform", args),
        mesh_spec("transpose", args),
        cube_spec("uniform", args),
        cube_spec("hypercube-transpose", args),
        cube_spec("reverse-flip", args),
    ];
    let groups = run_specs("saturation table (E9)", &specs, args);
    let tables: Vec<Vec<(String, f64)>> = groups.iter().map(|g| best(g)).collect();
    let [mesh_uniform, mesh_transpose, cube_uniform, cube_transpose, cube_flip] = &tables[..]
    else {
        unreachable!("five specs yield five groups")
    };

    let get = |table: &[(String, f64)], name: &str| {
        table
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    let best_adaptive = |table: &[(String, f64)]| {
        table
            .iter()
            .filter(|(n, _)| n != "xy" && n != "e-cube")
            .map(|&(_, v)| v)
            .fold(0.0, f64::max)
    };

    eprintln!();
    eprintln!("# Paper claim vs. measured:");
    eprintln!(
        "#   mesh transpose, adaptive vs xy:        {:.2}x (paper ~2x)",
        ratio(best_adaptive(mesh_transpose), get(mesh_transpose, "xy"))
    );
    eprintln!(
        "#   cube transpose, adaptive vs e-cube:    {:.2}x (paper ~2x)",
        ratio(best_adaptive(cube_transpose), get(cube_transpose, "e-cube"))
    );
    eprintln!(
        "#   cube reverse-flip, adaptive vs e-cube: {:.2}x (paper ~4x)",
        ratio(best_adaptive(cube_flip), get(cube_flip, "e-cube"))
    );
    eprintln!(
        "#   mesh best (nf/transpose) vs xy/uniform: {:.2}x (paper ~1.3x)",
        ratio(
            get(mesh_transpose, "negative-first"),
            get(mesh_uniform, "xy")
        )
    );
    eprintln!(
        "#   cube best (adaptive/flip) vs e-cube/uniform: {:.2}x (paper ~1.5x)",
        ratio(best_adaptive(cube_flip), get(cube_uniform, "e-cube"))
    );
}
