//! The Section 5 worked example: p-cube routing choices along a path
//! from 1011010100 to 0010111001 in a binary 10-cube.

use turnroute_analysis::section5_example;
use turnroute_core::adaptiveness::{hypercube_fully_adaptive_shortest_paths, pcube_shortest_paths};

fn main() {
    let rows = section5_example();
    println!("address,choices,extra_nonminimal,dimension_taken,comment");
    for (i, row) in rows.iter().enumerate() {
        let comment = match i {
            0 => "source",
            _ if row.extra_nonminimal > 0 => "phase 1",
            _ => "phase 2",
        };
        println!(
            "{:010b},{},{},{},{}",
            row.address, row.choices, row.extra_nonminimal, row.dimension_taken, comment
        );
    }
    println!("{:010b},,,,destination", 0b0010111001);
    eprintln!(
        "# p-cube shortest paths: {} of {} fully adaptive (36 of 720 of the paper)",
        pcube_shortest_paths(0b1011010100, 0b0010111001),
        hypercube_fully_adaptive_shortest_paths(0b1011010100, 0b0010111001),
    );
}
