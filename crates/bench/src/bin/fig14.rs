//! Figure 14: latency vs. throughput for **matrix-transpose** traffic in
//! a 16x16 mesh.
//!
//! Expected shape (paper): the partially adaptive algorithms sustain
//! roughly twice the throughput of xy, with negative-first the best —
//! transpose traffic lives in the quadrant negative-first routes fully
//! adaptively.

use turnroute_bench::{run_figure, Scale, MESH_LOADS};
use turnroute_core::{DimensionOrder, NegativeFirst, NorthLast, RoutingAlgorithm, WestFirst};
use turnroute_sim::patterns::Transpose;
use turnroute_topology::Mesh;

fn main() {
    let scale = Scale::from_args();
    let mesh = Mesh::new_2d(16, 16);
    let xy = DimensionOrder::new();
    let wf = WestFirst::minimal();
    let nl = NorthLast::minimal();
    let nf = NegativeFirst::minimal();
    let algorithms: Vec<(&str, &dyn RoutingAlgorithm)> = vec![
        ("xy", &xy),
        ("west-first", &wf),
        ("north-last", &nl),
        ("negative-first", &nf),
    ];
    run_figure(
        "Figure 14: matrix-transpose traffic",
        &mesh,
        &algorithms,
        &Transpose,
        MESH_LOADS,
        scale,
    );
}
