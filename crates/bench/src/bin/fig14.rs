//! Figure 14: latency vs. throughput for **matrix-transpose** traffic in
//! a 16x16 mesh.
//!
//! Expected shape (paper): the partially adaptive algorithms sustain
//! roughly twice the throughput of xy, with negative-first the best —
//! transpose traffic lives in the quadrant negative-first routes fully
//! adaptively.

use turnroute::experiment::ExperimentSpec;
use turnroute_bench::{run_spec, RunArgs, MESH_LOADS};

fn main() {
    let args = RunArgs::from_args();
    let spec = ExperimentSpec::builder("mesh:16x16", "transpose")
        .algorithm_as("xy", "xy")
        .algorithm("west-first")
        .algorithm("north-last")
        .algorithm("negative-first")
        .loads(MESH_LOADS)
        .config(args.scale.config())
        .build()
        .expect("a static regenerator spec resolves");
    run_spec("Figure 14: matrix-transpose traffic", &spec, args);
}
