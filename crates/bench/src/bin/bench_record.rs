//! The perf-regression recorder and CI gate (`scripts/bench.sh`).
//!
//! Default mode re-measures the committed workloads, appends one
//! record to `bench/history.jsonl`, regenerates the trajectory
//! dashboard (`bench/dashboard.html`), and rewrites the repo-root
//! `BENCH_engine.json` / `BENCH_sweep.json` artifacts from the same
//! measurement. `--check` measures without recording: it compares the
//! fresh numbers against the last committed record and exits nonzero
//! on a >10% throughput regression, while still writing the dashboard
//! (with the fresh point appended in memory) for CI artifact upload.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use turnroute_bench::regression::{
    check, parse_history, BenchRecord, DEFAULT_TOLERANCE, RECORD_SCHEMA,
};
use turnroute_bench::workloads::{
    measure_engine, measure_engine_mmpp, measure_engine_sharded, measure_sweep, measure_synth,
    render_engine_json, render_sweep_json,
};

const USAGE: &str = "\
usage: bench_record [--check] [--tolerance F] [--note TEXT]
  (default)     measure, append to bench/history.jsonl, rewrite the
                BENCH_*.json artifacts, regenerate bench/dashboard.html
  --check       measure and gate against the last committed record
                without writing history or BENCH artifacts; exits 1 on
                a regression beyond the tolerance (still writes the
                dashboard so CI can upload it)
  --tolerance F fractional regression allowed per metric (default 0.10)
  --note TEXT   free-form context stored in the record (record mode)";

struct Args {
    check_only: bool,
    tolerance: f64,
    note: String,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        check_only: false,
        tolerance: DEFAULT_TOLERANCE,
        note: String::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => args.check_only = true,
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                args.tolerance = v
                    .parse()
                    .map_err(|_| format!("bad --tolerance value '{v}'"))?;
                if !(0.0..1.0).contains(&args.tolerance) {
                    return Err("--tolerance must be in [0, 1)".into());
                }
            }
            "--note" => {
                args.note = it.next().ok_or("--note needs a value")?.clone();
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(args)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let root = repo_root();
    let bench_dir = root.join("bench");
    let history_path = bench_dir.join("history.jsonl");
    let dashboard_path = bench_dir.join("dashboard.html");

    let mut history = match std::fs::read_to_string(&history_path) {
        Ok(text) => match parse_history(&text) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: {}: {e}", history_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", history_path.display());
            return ExitCode::FAILURE;
        }
    };

    eprintln!("# measuring the engine-throughput workload");
    let engine = measure_engine(10);
    eprintln!("# measuring the sharded large-mesh workload");
    let sharded = measure_engine_sharded(10);
    eprintln!("# measuring the MMPP injection workload");
    let mmpp = measure_engine_mmpp(10);
    eprintln!("# measuring the sweep-grid workload");
    let sweep = measure_sweep(5);
    eprintln!("# measuring the synthesis workload");
    let synth = measure_synth(10);

    let recorded_at_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let current = BenchRecord {
        schema: RECORD_SCHEMA,
        recorded_at_unix,
        host_cores: sweep.host_cores as u64,
        engine_west_first_cps: engine.west_first_cps.round(),
        engine_xy_cps: engine.xy_cps.round(),
        engine_mesh64_serial_cps: sharded.serial_cps.round(),
        engine_sharded_cps: sharded.sharded_cps.round(),
        engine_mmpp_cps: mmpp.mmpp_cps.round(),
        sharded_speedup: (sharded.speedup * 1e3).round() / 1e3,
        synth_candidates_per_sec: (synth.candidates_per_sec * 10.0).round() / 10.0,
        sweep_cells_per_sec: (sweep.cells_per_sec * 1e3).round() / 1e3,
        sweep_serial_secs: (sweep.serial_secs * 1e4).round() / 1e4,
        sweep_threads8_secs: (sweep.threads8_secs * 1e4).round() / 1e4,
        sweep_speedup_8_threads: (sweep.speedup_8 * 1e3).round() / 1e3,
        note: args.note.clone(),
    };

    println!(
        "engine west-first {:.0} cycles/s · engine xy {:.0} cycles/s · \
         sharded 64x64 {:.0} cycles/s ({} shard(s), {:.2}x vs serial {:.0}) · \
         mmpp {:.0} cycles/s · \
         synth {:.1} candidates/s · \
         sweep {:.1} cells/s (serial {:.3}s, 8 threads {:.3}s, {} core(s))",
        current.engine_west_first_cps,
        current.engine_xy_cps,
        current.engine_sharded_cps,
        sharded.shards,
        current.sharded_speedup,
        current.engine_mesh64_serial_cps,
        current.engine_mmpp_cps,
        current.synth_candidates_per_sec,
        current.sweep_cells_per_sec,
        current.sweep_serial_secs,
        current.sweep_threads8_secs,
        current.host_cores,
    );

    let verdict = match history.last() {
        Some(last) => {
            let violations = check(last, &current, args.tolerance);
            if violations.is_empty() {
                println!(
                    "gate: PASS vs record of {} (tolerance {:.0}%)",
                    last.recorded_at_unix,
                    args.tolerance * 100.0
                );
                Ok(())
            } else {
                for v in &violations {
                    eprintln!("gate: FAIL {v}");
                }
                Err(())
            }
        }
        None => {
            println!("gate: no committed history yet; this run records the first point");
            Ok(())
        }
    };

    if args.check_only {
        // The dashboard still shows where this (unrecorded) run lands.
        history.push(current);
        if let Err(e) = write_dashboard(&dashboard_path, &history) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        return match verdict {
            Ok(()) => ExitCode::SUCCESS,
            Err(()) => ExitCode::FAILURE,
        };
    }

    // Record mode: append to history, rewrite the BENCH artifacts, and
    // regenerate the dashboard. A failing gate still records (the
    // history must tell the truth) but the exit code reports it.
    if let Err(e) = std::fs::create_dir_all(&bench_dir) {
        eprintln!("error: cannot create {}: {e}", bench_dir.display());
        return ExitCode::FAILURE;
    }
    let mut lines: String = history.iter().map(|r| r.to_json_line() + "\n").collect();
    lines.push_str(&current.to_json_line());
    lines.push('\n');
    if let Err(e) = std::fs::write(&history_path, lines) {
        eprintln!("error: cannot write {}: {e}", history_path.display());
        return ExitCode::FAILURE;
    }
    history.push(current);
    println!("recorded -> {}", history_path.display());

    for (path, body) in [
        (
            root.join("BENCH_engine.json"),
            render_engine_json(&engine, &sharded, &mmpp),
        ),
        (root.join("BENCH_sweep.json"), render_sweep_json(&sweep)),
    ] {
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote    -> {}", path.display());
    }
    if let Err(e) = write_dashboard(&dashboard_path, &history) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    match verdict {
        Ok(()) => ExitCode::SUCCESS,
        Err(()) => ExitCode::FAILURE,
    }
}

fn write_dashboard(path: &Path, history: &[BenchRecord]) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    std::fs::write(path, turnroute_bench::regression::render_dashboard(history))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("dashboard -> {}", path.display());
    Ok(())
}
