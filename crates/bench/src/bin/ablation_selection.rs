//! Selection-policy ablation (the paper's \[19\] future-work direction):
//! how input arbitration (FCFS / fixed priority / random) and output
//! channel choice (lowest dimension / highest / straight-first / random)
//! affect west-first's latency and throughput on transpose traffic.

use turnroute_bench::Scale;
use turnroute_core::WestFirst;
use turnroute_sim::patterns::Transpose;
use turnroute_sim::{sweep, InputSelection, OutputSelection, SimConfig};
use turnroute_topology::Mesh;

fn main() {
    let scale = Scale::from_args();
    let mesh = Mesh::new_2d(16, 16);
    let algo = WestFirst::minimal();
    let loads = [0.02, 0.05, 0.08, 0.12, 0.16];

    println!("input_selection,output_selection,offered_load,throughput,avg_latency_usec,sustainable");
    let inputs = [
        ("fcfs", InputSelection::FirstComeFirstServed),
        ("fixed", InputSelection::FixedPriority),
        ("random", InputSelection::Random),
    ];
    let outputs = [
        ("lowest-dim", OutputSelection::LowestDimension),
        ("highest-dim", OutputSelection::HighestDimension),
        ("straight-first", OutputSelection::StraightFirst),
        ("random", OutputSelection::Random),
    ];
    for (in_name, input) in inputs {
        for (out_name, output) in outputs {
            let config: SimConfig = scale
                .config()
                .input_selection(input)
                .output_selection(output);
            let series = sweep(&mesh, &algo, &Transpose, &config, &loads);
            for p in &series.points {
                println!(
                    "{},{},{:.3},{:.2},{},{}",
                    in_name,
                    out_name,
                    p.offered_load,
                    p.throughput,
                    p.avg_latency_usec
                        .map_or(String::new(), |v| format!("{v:.2}")),
                    p.sustainable
                );
            }
            eprintln!(
                "#  {in_name:>6} / {out_name:<14} max sustainable {:>7.1} flits/usec",
                series.max_sustainable_throughput()
            );
        }
    }
}
