//! Selection-policy ablation (the paper's \[19\] future-work direction):
//! how input arbitration (FCFS / fixed priority / random) and output
//! channel choice (lowest dimension / highest / straight-first / random)
//! affect west-first's latency and throughput on transpose traffic.
//!
//! Selection policies live in [`SimConfig`], not the algorithm, so this
//! grid is one [`SeriesJob`] per (input, output) pair — all fanned out
//! through the same deterministic executor as the figures, with the
//! policy pair as the series label.

use turnroute_bench::RunArgs;
use turnroute_core::WestFirst;
use turnroute_sim::patterns::Transpose;
use turnroute_sim::report::write_csv;
use turnroute_sim::{Executor, InputSelection, OutputSelection, SeriesJob, SimConfig, SweepSeries};
use turnroute_topology::{Mesh, Topology};

fn main() {
    let args = RunArgs::from_args();
    let mesh = Mesh::new_2d(16, 16);
    let algo = WestFirst::minimal();
    let loads = [0.02, 0.05, 0.08, 0.12, 0.16];

    let inputs = [
        ("fcfs", InputSelection::FirstComeFirstServed),
        ("fixed", InputSelection::FixedPriority),
        ("random", InputSelection::Random),
    ];
    let outputs = [
        ("lowest-dim", OutputSelection::LowestDimension),
        ("highest-dim", OutputSelection::HighestDimension),
        ("straight-first", OutputSelection::StraightFirst),
        ("random", OutputSelection::Random),
    ];

    let combos: Vec<(String, SimConfig)> = inputs
        .iter()
        .flat_map(|&(in_name, input)| {
            outputs.iter().map(move |&(out_name, output)| {
                let config: SimConfig = args
                    .scale
                    .config()
                    .input_selection(input)
                    .output_selection(output);
                (format!("{in_name}/{out_name}"), config)
            })
        })
        .collect();

    eprintln!(
        "# selection-policy ablation, west-first/transpose on {} ({:?} scale, {} thread(s))",
        mesh.label(),
        args.scale,
        args.threads
    );
    let jobs: Vec<SeriesJob<'_>> = combos
        .iter()
        .map(|(_, config)| SeriesJob::simulation(&mesh, &algo, &Transpose, config, &loads))
        .collect();
    let mut series: Vec<SweepSeries> = Executor::new(args.threads).run(jobs);
    for (s, (label, _)) in series.iter_mut().zip(&combos) {
        s.algorithm = label.clone();
    }
    let mut out = std::io::stdout().lock();
    write_csv(&series, &mut out).expect("writing CSV to stdout");
    for s in &series {
        eprintln!(
            "#  {:<22} max sustainable {:>7.1} flits/usec",
            s.algorithm,
            s.max_sustainable_throughput()
        );
    }
}
