//! The degree-of-adaptiveness tables of Sections 3.4, 4.1 and 5:
//! average `S_p / S_f`, single-path fraction, and average path count for
//! every algorithm on the paper's topologies.

use turnroute_analysis::{study_2d_mesh, study_hypercube, study_nd_mesh};
use turnroute_topology::{Hypercube, Mesh, Topology};

fn main() {
    println!("topology,algorithm,avg_ratio,single_path_fraction,avg_paths");

    let mesh = Mesh::new_2d(16, 16);
    for row in study_2d_mesh(&mesh) {
        println!(
            "{},{},{:.4},{:.4},{:.2}",
            mesh.label(),
            row.algorithm,
            row.avg_ratio,
            row.single_path_fraction,
            row.avg_paths
        );
    }
    eprintln!("# Section 3.4 claim: avg S_p/S_f > 1/2 in 2D meshes");

    let mesh3 = Mesh::new(vec![6, 6, 6]);
    for row in study_nd_mesh(&mesh3) {
        println!(
            "{},{},{:.4},{:.4},{:.2}",
            mesh3.label(),
            row.algorithm,
            row.avg_ratio,
            row.single_path_fraction,
            row.avg_paths
        );
    }
    eprintln!("# Section 4.1 claim: avg S_p/S_f > 1/2^(n-1) in nD meshes");

    let cube = Hypercube::new(8);
    let row = study_hypercube(&cube);
    println!(
        "{},{},{:.4},{:.4},{:.2}",
        cube.label(),
        row.algorithm,
        row.avg_ratio,
        row.single_path_fraction,
        row.avg_paths
    );
    eprintln!("# Section 5: S_p-cube = h1! h0!, vs. S_f = h!");
}
