//! Figures 1 and 4, live: routing with unrestricted turns (or with the
//! insufficient two-turn prohibition of Fig. 4) deadlocks under load,
//! and the simulator's watchdog extracts the circular wait. The same
//! load routed by west-first never deadlocks.

use turnroute_core::{RoutingAlgorithm, TurnSet, TurnSetRouting, WestFirst};
use turnroute_rng::Rng;
use turnroute_sim::patterns::{TrafficPattern, Uniform};
use turnroute_sim::{LengthDistribution, RunOutcome, SimConfig, Simulation};
use turnroute_topology::{Mesh, NodeId, Topology};

/// Uniform traffic excluding strictly-northeast pairs. The Fig. 4 turn
/// set prohibits both north<->east turns, so a northeast destination
/// would *strand* its packet; every other pair routes fine — and still
/// deadlocks, which is the figure's point: the circular wait needs only
/// the six allowed turns.
struct NonNortheast;

impl TrafficPattern for NonNortheast {
    fn name(&self) -> String {
        "uniform-no-NE".to_owned()
    }

    fn dest(
        &self,
        topo: &dyn Topology,
        src: NodeId,
        rng: &mut dyn turnroute_rng::RngCore,
    ) -> Option<NodeId> {
        let s = topo.coord_of(src);
        loop {
            let d = NodeId::new(rng.random_range(0..topo.num_nodes()));
            if d == src {
                continue;
            }
            let c = topo.coord_of(d);
            if c.get(0) > s.get(0) && c.get(1) > s.get(1) {
                continue; // needs both prohibited turns
            }
            return Some(d);
        }
    }
}

fn stress(algo: &dyn RoutingAlgorithm, pattern: &dyn TrafficPattern, label: &str) {
    let mesh = Mesh::new_2d(8, 8);
    let config = SimConfig::paper()
        .injection_rate(0.9)
        .lengths(LengthDistribution::Fixed(64))
        .warmup_cycles(0)
        .measure_cycles(40_000)
        .deadlock_threshold(2_000)
        .seed(3);
    let mut sim = Simulation::new(&mesh, algo, pattern, config);
    let report = sim.run();
    match report.outcome {
        RunOutcome::Deadlocked(d) => {
            println!("{label}: DEADLOCK");
            print!("{d}");
        }
        RunOutcome::Completed => {
            println!(
                "{label}: no deadlock ({} messages delivered under saturating load, {} stranded by the relation)",
                report.total_delivered, report.stranded_packets
            );
        }
    }
    println!();
}

fn main() {
    let mesh = Mesh::new_2d(8, 8);
    println!(
        "Stress test on a {}: 0.9 flits/cycle/node, 64-flit worms\n",
        mesh.label()
    );

    let unrestricted = TurnSetRouting::new(TurnSet::fully_adaptive(2));
    stress(
        &unrestricted,
        &Uniform,
        "fully adaptive, no extra channels (Fig. 1)",
    );

    let bad = TurnSetRouting::new(TurnSet::deadlocky_six_turns());
    println!(
        "Fig. 4 set breaks both abstract cycles: {} — yet its CDG is cyclic: {}",
        TurnSet::deadlocky_six_turns().breaks_all_abstract_cycles(),
        !turnroute_core::ChannelDependencyGraph::from_turn_set(
            &mesh,
            &TurnSet::deadlocky_six_turns()
        )
        .is_acyclic()
    );
    stress(
        &bad,
        &NonNortheast,
        "six turns of Fig. 4 (one prohibited per cycle, still unsafe)",
    );

    stress(
        &WestFirst::minimal(),
        &Uniform,
        "west-first (Theorem 2: deadlock free)",
    );
}
