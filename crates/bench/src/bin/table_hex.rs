//! The turn model on hexagonal meshes (Section 7 future work): turn
//! census, cycle inventory, deadlock verdicts, and a saturation
//! comparison of axis-order vs. negative-first routing.

use turnroute_analysis::{
    hex_abstract_cycles, hex_axis_order, hex_deadlock_free, hex_negative_first, hex_turn_kind,
    HexTurnKind,
};
use turnroute_bench::Scale;
use turnroute_core::{DimensionOrder, NegativeFirst, RoutingAlgorithm, Turn, TurnSet};
use turnroute_sim::patterns::Uniform;
use turnroute_sim::sweep;
use turnroute_topology::{HexMesh, Topology};

fn main() {
    let scale = Scale::from_args();

    // Census.
    let turns: Vec<Turn> = Turn::all_ninety(3).collect();
    let sixty = turns
        .iter()
        .filter(|&&t| hex_turn_kind(t) == HexTurnKind::Sixty)
        .count();
    let onetwenty = turns
        .iter()
        .filter(|&&t| hex_turn_kind(t) == HexTurnKind::OneTwenty)
        .count();
    eprintln!(
        "# hex turn census: {} turns ({sixty} at 60 deg, {onetwenty} at 120 deg)",
        turns.len()
    );
    let cycles = hex_abstract_cycles();
    let triangles = cycles.iter().filter(|c| c.turns.len() == 3).count();
    eprintln!(
        "# elementary cycles: {} ({} triangles, {} quadrilaterals)",
        cycles.len(),
        triangles,
        cycles.len() - triangles
    );

    // Verdicts.
    let hex = HexMesh::new(8, 8);
    println!("turn_set,prohibited_turns,deadlock_free");
    for (name, set) in [
        ("fully-adaptive", TurnSet::fully_adaptive(3)),
        ("axis-order", hex_axis_order()),
        ("negative-first", hex_negative_first()),
    ] {
        println!(
            "{},{},{}",
            name,
            set.prohibited_ninety().count(),
            hex_deadlock_free(&hex, &set)
        );
    }
    eprintln!("# negative-first again prohibits exactly a quarter (6 of 24)");

    // Saturation comparison under uniform traffic.
    let config = scale.config();
    let loads = [0.02, 0.05, 0.08, 0.12, 0.16, 0.22];
    let dor = DimensionOrder::new();
    let nf = NegativeFirst::with_dims(3, true);
    let algos: Vec<(&str, &dyn RoutingAlgorithm)> =
        vec![("axis-order", &dor), ("negative-first", &nf)];
    println!();
    println!("algorithm,pattern,offered_load,throughput_flits_per_usec,avg_latency_usec,p95_latency_usec,avg_hops,sustainable");
    for (name, algo) in algos {
        let mut series = sweep(&hex, algo, &Uniform, &config, &loads);
        series.algorithm = name.to_owned();
        print!("{}", series.to_csv());
        eprintln!(
            "#   {:<16} max sustainable {:>8.1} flits/usec on {}",
            name,
            series.max_sustainable_throughput(),
            hex.label()
        );
    }
}
