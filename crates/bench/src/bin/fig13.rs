//! Figure 13: latency vs. throughput for **uniform** traffic in a
//! 16x16 mesh — xy, west-first, north-last and negative-first.
//!
//! Expected shape (paper): all algorithms agree at low load; at high
//! load the nonadaptive xy algorithm sustains slightly higher throughput
//! with lower latency, because dimension-order routing happens to spread
//! uniform traffic evenly.

use turnroute_bench::{run_figure, Scale, MESH_LOADS};
use turnroute_core::{DimensionOrder, NegativeFirst, NorthLast, RoutingAlgorithm, WestFirst};
use turnroute_sim::patterns::Uniform;
use turnroute_topology::Mesh;

fn main() {
    let scale = Scale::from_args();
    let mesh = Mesh::new_2d(16, 16);
    let xy = DimensionOrder::new();
    let wf = WestFirst::minimal();
    let nl = NorthLast::minimal();
    let nf = NegativeFirst::minimal();
    let algorithms: Vec<(&str, &dyn RoutingAlgorithm)> = vec![
        ("xy", &xy),
        ("west-first", &wf),
        ("north-last", &nl),
        ("negative-first", &nf),
    ];
    run_figure(
        "Figure 13: uniform traffic",
        &mesh,
        &algorithms,
        &Uniform,
        MESH_LOADS,
        scale,
    );
}
