//! Figure 13: latency vs. throughput for **uniform** traffic in a
//! 16x16 mesh — xy, west-first, north-last and negative-first.
//!
//! Expected shape (paper): all algorithms agree at low load; at high
//! load the nonadaptive xy algorithm sustains slightly higher throughput
//! with lower latency, because dimension-order routing happens to spread
//! uniform traffic evenly.

use turnroute::experiment::ExperimentSpec;
use turnroute_bench::{run_spec, RunArgs, MESH_LOADS};

fn main() {
    let args = RunArgs::from_args();
    let spec = ExperimentSpec::builder("mesh:16x16", "uniform")
        .algorithm_as("xy", "xy")
        .algorithm("west-first")
        .algorithm("north-last")
        .algorithm("negative-first")
        .loads(MESH_LOADS)
        .config(args.scale.config())
        .build()
        .expect("a static regenerator spec resolves");
    run_spec("Figure 13: uniform traffic", &spec, args);
}
