//! Section 6's average path lengths: 10.61 (uniform) and 11.34
//! (transpose) hops in the 16x16 mesh; 4.01 (uniform) and 4.27
//! (reverse-flip) hops in the binary 8-cube.

use turnroute_analysis::{
    mean_reverse_flip_distance, mean_transpose_distance, mean_uniform_distance,
};
use turnroute_topology::{Hypercube, Mesh, Topology};

fn main() {
    let mesh = Mesh::new_2d(16, 16);
    let cube = Hypercube::new(8);
    println!("topology,pattern,mean_hops,paper_reports");
    println!(
        "{},uniform,{:.4},10.61",
        mesh.label(),
        mean_uniform_distance(&mesh)
    );
    println!(
        "{},matrix-transpose,{:.4},11.34",
        mesh.label(),
        mean_transpose_distance(&mesh)
    );
    println!(
        "{},uniform,{:.4},4.01",
        cube.label(),
        mean_uniform_distance(&cube)
    );
    println!(
        "{},reverse-flip,{:.4},4.27",
        cube.label(),
        mean_reverse_flip_distance(&cube)
    );
    eprintln!("# The adaptive algorithms' nonuniform-traffic wins come despite longer paths.");
}
