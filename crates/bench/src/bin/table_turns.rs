//! Theorem 1/6 and the Section 3 prohibition analysis: turn counts per
//! dimension, the 12-of-16 classification, and the three symmetry
//! classes.

use turnroute_analysis::{
    classify_2d_prohibitions, classify_3d_prohibitions, symmetry_classes_of_valid_3d_choices,
    symmetry_classes_of_valid_choices, turn_census,
};

fn main() {
    println!("n,ninety_degree_turns,abstract_cycles,min_prohibited");
    for n in 2..=8 {
        let c = turn_census(n);
        println!(
            "{},{},{},{}",
            n, c.ninety_degree_turns, c.abstract_cycles, c.min_prohibited
        );
    }
    eprintln!("# Theorem 1/6: exactly a quarter of the turns must and suffice to be prohibited");

    let choices = classify_2d_prohibitions();
    let ok = choices.iter().filter(|c| c.deadlock_free).count();
    eprintln!(
        "# Section 3: {ok} of {} one-turn-per-cycle prohibitions prevent deadlock",
        choices.len()
    );
    println!();
    println!("prohibited_turn_1,prohibited_turn_2,deadlock_free");
    for c in &choices {
        println!(
            "{},{},{}",
            c.prohibited[0], c.prohibited[1], c.deadlock_free
        );
    }

    let classes = symmetry_classes_of_valid_choices();
    eprintln!(
        "# {} symmetry classes among the deadlock-free choices:",
        classes.len()
    );
    for (i, class) in classes.iter().enumerate() {
        let members: Vec<String> = class
            .iter()
            .map(|set| {
                set.prohibited_ninety()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            })
            .collect();
        eprintln!(
            "#   class {}: {} members [{}]",
            i + 1,
            class.len(),
            members.join(", ")
        );
    }

    // The 3D extension: step 4's "complex cycles" warning, quantified.
    let (free, total) = classify_3d_prohibitions();
    eprintln!();
    eprintln!(
        "# 3D extension: {free} of {total} one-turn-per-cycle choices prevent deadlock \
         ({:.1}%, vs 75% in 2D)",
        100.0 * free as f64 / total as f64
    );
    let sizes = symmetry_classes_of_valid_3d_choices();
    eprintln!(
        "#   {} symmetry classes under the cube's 48 symmetries, orbit sizes {:?}",
        sizes.len(),
        sizes
    );
    eprintln!("#   (the size-8 orbit is negative-first's: axis-permutation invariant)");
}
