//! Extension figure (reference \[18\]): fully adaptive mad-y (one extra
//! y lane) against the best channel-free algorithms, on the paper's
//! 16x16-mesh workloads, all in the virtual-channel engine for an
//! apples-to-apples comparison.
//!
//! The diagonal transpose is mad-y's showcase: every pair is mixed-sign,
//! so all the channel-free algorithms collapse to a single path while
//! mad-y stays fully adaptive.

use turnroute::experiment::{Engine, ExperimentSpec};
use turnroute_bench::{run_specs, RunArgs, MESH_LOADS};

fn main() {
    let args = RunArgs::from_args();
    let specs: Vec<ExperimentSpec> = ["uniform", "transpose", "diagonal-transpose"]
        .into_iter()
        .map(|pattern| {
            ExperimentSpec::builder("mesh:16x16", pattern)
                .algorithm_as("xy", "xy")
                .algorithm("negative-first")
                .algorithm("mad-y")
                .loads(MESH_LOADS)
                .config(args.scale.config())
                .engine(Engine::VirtualChannel)
                .build()
                .expect("a static regenerator spec resolves")
        })
        .collect();
    run_specs("mad-y comparison on mesh:16x16", &specs, args);
}
