//! Extension figure (reference \[18\]): fully adaptive mad-y (one extra
//! y lane) against the best channel-free algorithms, on the paper's
//! 16x16-mesh workloads, all in the virtual-channel engine for an
//! apples-to-apples comparison.

use turnroute_bench::{Scale, MESH_LOADS};
use turnroute_core::{DimensionOrder, NegativeFirst};
use turnroute_sim::patterns::{DiagonalTranspose, TrafficPattern, Transpose, Uniform};
use turnroute_vc::{sweep_vc, MadY, SingleClass, VcRoutingAlgorithm};
use turnroute_topology::{Mesh, Topology};

fn main() {
    let scale = Scale::from_args();
    let mesh = Mesh::new_2d(16, 16);
    let config = scale.config();

    let xy = SingleClass::new(DimensionOrder::new());
    let nf = SingleClass::new(NegativeFirst::minimal());
    let mady = MadY::new();
    let algos: Vec<(&str, &dyn VcRoutingAlgorithm)> = vec![
        ("xy", &xy),
        ("negative-first", &nf),
        ("mad-y", &mady),
    ];
    // The diagonal transpose is mad-y's showcase: every pair is
    // mixed-sign, so all the channel-free algorithms collapse to a
    // single path while mad-y stays fully adaptive.
    let patterns: Vec<&dyn TrafficPattern> = vec![&Uniform, &Transpose, &DiagonalTranspose];

    println!("algorithm,pattern,offered_load,throughput_flits_per_usec,avg_latency_usec,p95_latency_usec,avg_hops,sustainable");
    for pattern in &patterns {
        eprintln!("# mad-y comparison, {} on {} ({scale:?} scale)", pattern.name(), mesh.label());
        for &(name, algo) in &algos {
            let mut series = sweep_vc(&mesh, algo, *pattern, &config, MESH_LOADS);
            series.algorithm = name.to_owned();
            print!("{}", series.to_csv());
            eprintln!(
                "#   {:<16} max sustainable throughput {:>8.1} flits/usec",
                name,
                series.max_sustainable_throughput()
            );
        }
    }
}
