//! Benchmarks of the deadlock-freedom machinery: CDG construction and
//! acyclicity checking, and the full 16-choice Section 3 classification.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use turnroute_core::{ChannelDependencyGraph, TurnSet};
use turnroute_topology::{Hypercube, Mesh};

fn cdg_mesh(c: &mut Criterion) {
    let mesh16 = Mesh::new_2d(16, 16);
    let wf = TurnSet::west_first();
    c.bench_function("cdg-build-check-16x16-west-first", |b| {
        b.iter(|| {
            let cdg = ChannelDependencyGraph::from_turn_set(&mesh16, &wf);
            black_box(cdg.is_acyclic())
        })
    });
    let free = TurnSet::fully_adaptive(2);
    c.bench_function("cdg-find-cycle-16x16-fully-adaptive", |b| {
        b.iter(|| {
            let cdg = ChannelDependencyGraph::from_turn_set(&mesh16, &free);
            black_box(cdg.find_cycle().is_some())
        })
    });
}

fn cdg_hypercube(c: &mut Criterion) {
    let cube = Hypercube::new(8);
    let nf = TurnSet::negative_first(8);
    c.bench_function("cdg-build-check-8cube-negative-first", |b| {
        b.iter(|| {
            let cdg = ChannelDependencyGraph::from_turn_set(&cube, &nf);
            black_box(cdg.is_acyclic())
        })
    });
}

fn classify_16_choices(c: &mut Criterion) {
    let mesh = Mesh::new_2d(4, 4);
    c.bench_function("classify-16-prohibition-choices", |b| {
        b.iter(|| {
            let ok = TurnSet::one_turn_per_cycle_prohibitions(2)
                .iter()
                .filter(|set| {
                    ChannelDependencyGraph::from_turn_set(&mesh, set).is_acyclic()
                })
                .count();
            black_box(ok)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = cdg_mesh, cdg_hypercube, classify_16_choices
}
criterion_main!(benches);
