//! Benchmarks of the deadlock-freedom machinery: CDG construction and
//! acyclicity checking, and the full 16-choice Section 3 classification.

use std::hint::black_box;
use turnroute_bench::timing::Harness;
use turnroute_core::{ChannelDependencyGraph, TurnSet};
use turnroute_topology::{Hypercube, Mesh};

fn cdg_mesh(h: &mut Harness) {
    let mesh16 = Mesh::new_2d(16, 16);
    let wf = TurnSet::west_first();
    h.bench("cdg-build-check-16x16-west-first", || {
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh16, &wf);
        black_box(cdg.is_acyclic())
    });
    let free = TurnSet::fully_adaptive(2);
    h.bench("cdg-find-cycle-16x16-fully-adaptive", || {
        let cdg = ChannelDependencyGraph::from_turn_set(&mesh16, &free);
        black_box(cdg.find_cycle().is_some())
    });
}

fn cdg_hypercube(h: &mut Harness) {
    let cube = Hypercube::new(8);
    let nf = TurnSet::negative_first(8);
    h.bench("cdg-build-check-8cube-negative-first", || {
        let cdg = ChannelDependencyGraph::from_turn_set(&cube, &nf);
        black_box(cdg.is_acyclic())
    });
}

fn classify_16_choices(h: &mut Harness) {
    let mesh = Mesh::new_2d(4, 4);
    h.bench("classify-16-prohibition-choices", || {
        let ok = TurnSet::one_turn_per_cycle_prohibitions(2)
            .iter()
            .filter(|set| ChannelDependencyGraph::from_turn_set(&mesh, set).is_acyclic())
            .count();
        black_box(ok)
    });
}

fn main() {
    let mut h = Harness::new().sample_size(20);
    cdg_mesh(&mut h);
    cdg_hypercube(&mut h);
    classify_16_choices(&mut h);
}
