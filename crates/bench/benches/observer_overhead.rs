//! Observer-layer overhead: the same Section 6 simulation run with no
//! observer, with counting observers, and with full trace capture,
//! recorded to `BENCH_obs.json` at the repo root.
//!
//! The no-op run IS the seed configuration: `Simulation::new` defaults
//! to `NoopObserver`, whose hooks monomorphize to nothing, so any gap
//! between "noop" here and the seed's simulator bench is noise. The
//! interesting deltas are the counting stack (turn matrix + channel
//! activity — a few array writes per event) and full trace capture
//! (string formatting and event buffering per flit movement).

use turnroute_bench::timing::Harness;
use turnroute_core::{TurnSet, WestFirst};
use turnroute_sim::patterns::Transpose;
use turnroute_sim::{
    ChannelActivityObserver, FlitTraceObserver, SimConfig, SimReport, Simulation, TurnUsageObserver,
};
use turnroute_topology::Mesh;

fn config() -> SimConfig {
    SimConfig::paper()
        .injection_rate(0.08)
        .warmup_cycles(1_000)
        .measure_cycles(4_000)
        .seed(9)
}

fn run_noop(mesh: &Mesh, algo: &WestFirst) -> SimReport {
    Simulation::new(mesh, algo, &Transpose, config()).run()
}

fn run_counting(mesh: &Mesh, algo: &WestFirst) -> SimReport {
    let obs = (
        TurnUsageObserver::new(TurnSet::west_first()),
        ChannelActivityObserver::new(),
    );
    Simulation::with_observer(mesh, algo, &Transpose, config(), obs).run()
}

fn run_tracing(mesh: &Mesh, algo: &WestFirst) -> (SimReport, usize) {
    let obs = FlitTraceObserver::new();
    let mut sim = Simulation::with_observer(mesh, algo, &Transpose, config(), obs);
    let report = sim.run();
    let events = sim.observer().len();
    (report, events)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mesh = Mesh::new_2d(16, 16);
    let algo = WestFirst::minimal();

    // Non-perturbation first: all three configurations must produce the
    // identical result (observers are read-only and RNG-free).
    let baseline = run_noop(&mesh, &algo);
    assert_eq!(
        baseline.metrics.latencies,
        run_counting(&mesh, &algo).metrics.latencies,
        "counting observers changed the simulation"
    );
    let (traced, trace_events) = run_tracing(&mesh, &algo);
    assert_eq!(
        baseline.metrics.latencies, traced.metrics.latencies,
        "trace capture changed the simulation"
    );

    let mut h = Harness::new().sample_size(5);
    let noop = h
        .bench("obs/mesh16_west_first/noop", || run_noop(&mesh, &algo))
        .median_secs();
    let counting = h
        .bench("obs/mesh16_west_first/counting", || {
            run_counting(&mesh, &algo)
        })
        .median_secs();
    let tracing = h
        .bench("obs/mesh16_west_first/full_trace", || {
            run_tracing(&mesh, &algo)
        })
        .median_secs();

    println!(
        "counting overhead: {:+.1}%, full trace overhead: {:+.1}% ({} events)",
        (counting / noop - 1.0) * 100.0,
        (tracing / noop - 1.0) * 100.0,
        trace_events
    );

    let json = format!(
        r#"{{
  "bench": "observer_overhead",
  "workload": "mesh:16x16, west-first, transpose at 0.08 flits/cycle/node, 1k warmup + 4k measured cycles",
  "host_cores": {cores},
  "noop_secs": {noop:.4},
  "counting_secs": {counting:.4},
  "full_trace_secs": {tracing:.4},
  "counting_overhead_pct": {:.1},
  "full_trace_overhead_pct": {:.1},
  "trace_events_captured": {trace_events},
  "results_identical_across_observers": true,
  "note": "noop is the seed configuration (Simulation::new defaults to NoopObserver, monomorphized away); counting = turn-usage matrix + channel activity; full trace buffers one formatted event per header move, turn, block and delivery with no window filter."
}}
"#,
        (counting / noop - 1.0) * 100.0,
        (tracing / noop - 1.0) * 100.0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, &json).expect("writing BENCH_obs.json");
    println!("wrote {path}");
}
