//! Benchmarks of path counting: the closed forms against the exhaustive
//! dynamic-programming oracle.

use std::hint::black_box;
use turnroute_bench::timing::Harness;
use turnroute_core::adaptiveness::{
    fully_adaptive_shortest_paths, pcube_shortest_paths, west_first_shortest_paths,
};
use turnroute_core::{count_paths, PCube, WestFirst};
use turnroute_topology::{Hypercube, Mesh, NodeId, Topology};

fn formulas(h: &mut Harness) {
    let mesh = Mesh::new_2d(16, 16);
    let s = mesh.node_at(&[0, 0].into());
    let d = mesh.node_at(&[15, 15].into());
    h.bench("formula-west-first-16x16-corner", || {
        black_box(west_first_shortest_paths(&mesh, s, d))
    });
    h.bench("formula-fully-adaptive-16x16-corner", || {
        black_box(fully_adaptive_shortest_paths(&mesh, s, d))
    });
    h.bench("formula-pcube-10-cube", || {
        black_box(pcube_shortest_paths(0b1011010100, 0b0010111001))
    });
}

fn oracle(h: &mut Harness) {
    let mesh = Mesh::new_2d(8, 8);
    let wf = WestFirst::minimal();
    let s = mesh.node_at(&[0, 0].into());
    let d = mesh.node_at(&[7, 7].into());
    h.bench("dp-count-west-first-8x8-corner", || {
        black_box(count_paths(&wf, &mesh, s, d))
    });
    let cube = Hypercube::new(8);
    let pcube = PCube::minimal();
    h.bench("dp-count-pcube-8cube", || {
        black_box(count_paths(
            &pcube,
            &cube,
            NodeId::new(0b1011_0101),
            NodeId::new(0b0100_1010),
        ))
    });
}

fn main() {
    let mut h = Harness::new().sample_size(20);
    formulas(&mut h);
    oracle(&mut h);
}
