//! Serial-vs-parallel wall-clock for a figure-sized sweep through the
//! experiment executor, recorded to `BENCH_sweep.json` at the repo root.
//!
//! The grid is a scaled-down Figure 13/14 pair: 4 algorithms x 2
//! patterns x 6 loads on a 16x16 mesh; it lives in
//! [`turnroute_bench::workloads`] so this bench and the `bench_record`
//! regression gate measure the same thing. Results are bit-identical
//! at every thread count (asserted inside the workload), so the only
//! question is wall-clock. Note the executor schedules speculatively
//! past a series' saturation point; on a single hardware core that
//! speculation is pure extra work, so the parallel run only wins when
//! real cores exist.

use turnroute_bench::workloads::{measure_sweep, render_sweep_json};

fn main() {
    let m = measure_sweep(5);
    println!(
        "speedup at 8 threads: {:.2}x (host has {} core(s))",
        m.speedup_8, m.host_cores
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, render_sweep_json(&m)).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
