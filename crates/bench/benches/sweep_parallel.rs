//! Serial-vs-parallel wall-clock for a figure-sized sweep through the
//! experiment executor, recorded to `BENCH_sweep.json` at the repo root.
//!
//! The grid is a scaled-down Figure 13/14 pair: 4 algorithms x 2
//! patterns x 6 loads on a 16x16 mesh. Results are bit-identical at
//! every thread count (asserted here), so the only question is
//! wall-clock. Note the executor schedules speculatively past a series'
//! saturation point; on a single hardware core that speculation is pure
//! extra work, so the parallel run only wins when real cores exist.

use turnroute::experiment::ExperimentSpec;
use turnroute_bench::timing::Harness;
use turnroute_sim::report::write_csv;
use turnroute_sim::{SimConfig, SweepSeries};

const LOADS: &[f64] = &[0.01, 0.02, 0.04, 0.08, 0.12, 0.18];

fn spec(pattern: &str) -> ExperimentSpec {
    ExperimentSpec::builder("mesh:16x16", pattern)
        .algorithm("xy")
        .algorithm("west-first")
        .algorithm("north-last")
        .algorithm("negative-first")
        .loads(LOADS)
        .config(
            SimConfig::paper()
                .warmup_cycles(1_000)
                .measure_cycles(4_000)
                .seed(9),
        )
        .build()
        .expect("a static bench spec resolves")
}

fn run_grid(threads: usize) -> Vec<SweepSeries> {
    let mut all = spec("uniform").run(threads).expect("spec resolves");
    all.extend(spec("transpose").run(threads).expect("spec resolves"));
    all
}

fn csv_bytes(series: &[SweepSeries]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_csv(series, &mut buf).expect("in-memory CSV");
    buf
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Determinism first: the parallel bytes must equal the serial bytes.
    let serial_csv = csv_bytes(&run_grid(1));
    assert_eq!(
        serial_csv,
        csv_bytes(&run_grid(8)),
        "thread count changed the bytes"
    );

    let mut h = Harness::new().sample_size(5);
    let serial = h
        .bench("sweep/mesh16_grid/threads=1", || run_grid(1))
        .median_secs();
    let par2 = h
        .bench("sweep/mesh16_grid/threads=2", || run_grid(2))
        .median_secs();
    let par8 = h
        .bench("sweep/mesh16_grid/threads=8", || run_grid(8))
        .median_secs();

    let speedup8 = serial / par8;
    println!("speedup at 8 threads: {speedup8:.2}x (host has {cores} core(s))");

    let json = format!(
        r#"{{
  "bench": "sweep_parallel",
  "grid": "mesh:16x16, 4 algorithms x (uniform, transpose) x {} loads, quick windows",
  "host_cores": {cores},
  "serial_secs": {serial:.4},
  "threads2_secs": {par2:.4},
  "threads8_secs": {par8:.4},
  "speedup_2_threads": {:.3},
  "speedup_8_threads": {speedup8:.3},
  "bytes_identical_1_vs_8_threads": true,
  "note": "Executor schedules speculatively past each series' saturation cutoff, so on hosts with fewer hardware cores than workers the extra threads add work instead of overlapping it; the >=3x target presumes >=8 real cores."
}}
"#,
        LOADS.len(),
        serial / par2,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, &json).expect("writing BENCH_sweep.json");
    println!("wrote {path}");
}
