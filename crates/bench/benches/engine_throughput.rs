//! Engine hot-path throughput, recorded to `BENCH_engine.json` at the
//! repo root: simulated cycles per second on the standard 16x16-mesh
//! transpose workloads, with the precomputed route table on and off,
//! against the last recorded pre-optimisation baseline.
//!
//! The baseline constants below were measured on this host at commit
//! 1dec775 (before the allocation-free hot path and route tables) with
//! exactly this workload; re-measure them from that commit if the
//! workload ever changes.

use std::sync::Arc;

use turnroute_bench::timing::{Harness, JsonReport};
use turnroute_core::{DimensionOrder, RoutingAlgorithm, WestFirst};
use turnroute_sim::{
    patterns, NoopObserver, RouteTable, RouteTableMode, SimConfig, SimReport, Simulation,
};
use turnroute_topology::Mesh;

/// Pre-optimisation cycles/sec at commit 1dec775: west-first/transpose.
const BASELINE_WEST_FIRST_CPS: f64 = 110_014.0;
/// Pre-optimisation cycles/sec at commit 1dec775: xy/transpose.
const BASELINE_XY_CPS: f64 = 132_812.0;

fn workload_config(mode: RouteTableMode) -> SimConfig {
    SimConfig::paper()
        .injection_rate(0.08)
        .warmup_cycles(1_000)
        .measure_cycles(4_000)
        .seed(42)
        .route_table(mode)
}

/// One full run with a caller-owned table (`None` = direct routing),
/// mirroring the sweep executor, which builds the table once per series
/// and shares it across every cell.
fn run(
    mesh: &Mesh,
    algo: &dyn RoutingAlgorithm,
    table: Option<Arc<RouteTable>>,
) -> (SimReport, u64) {
    let mode = if table.is_some() {
        RouteTableMode::On
    } else {
        RouteTableMode::Off
    };
    let mut sim = Simulation::with_observer_and_table(
        mesh,
        algo,
        &patterns::Transpose,
        workload_config(mode),
        NoopObserver,
        table,
    );
    let report = sim.run();
    (report, sim.cycle())
}

fn main() {
    let mesh = Mesh::new_2d(16, 16);
    let wf = WestFirst::minimal();
    let xy = DimensionOrder::new();

    let wf_table = RouteTable::build(&mesh, &wf).map(Arc::new);
    let xy_table = RouteTable::build(&mesh, &xy).map(Arc::new);
    assert!(wf_table.is_some() && xy_table.is_some(), "pairs must table");

    // The route table must be invisible in the results; compare the
    // full report renderings before timing anything.
    let (wf_on, wf_cycles) = run(&mesh, &wf, wf_table.clone());
    let (wf_off, off_cycles) = run(&mesh, &wf, None);
    assert_eq!(wf_cycles, off_cycles, "route table changed the run length");
    let identical = format!("{wf_on:?}") == format!("{wf_off:?}");
    assert!(identical, "route table changed the report");

    let mut h = Harness::new().sample_size(10);
    let r_wf_on = h
        .bench("engine/mesh16/west-first/transpose/table-on", || {
            run(&mesh, &wf, wf_table.clone())
        })
        .clone();
    let r_wf_off = h
        .bench("engine/mesh16/west-first/transpose/table-off", || {
            run(&mesh, &wf, None)
        })
        .clone();
    let r_xy_on = h
        .bench("engine/mesh16/xy/transpose/table-on", || {
            run(&mesh, &xy, xy_table.clone())
        })
        .clone();

    let wf_cps = wf_cycles as f64 / r_wf_on.median_secs();
    let wf_cps_off = wf_cycles as f64 / r_wf_off.median_secs();
    let (_, xy_cycles) = run(&mesh, &xy, xy_table.clone());
    let xy_cps = xy_cycles as f64 / r_xy_on.median_secs();

    println!("west-first: {wf_cps:.0} cycles/sec (table off: {wf_cps_off:.0}, baseline {BASELINE_WEST_FIRST_CPS:.0})");
    println!("xy:         {xy_cps:.0} cycles/sec (baseline {BASELINE_XY_CPS:.0})");

    JsonReport::new()
        .field_str("bench", "engine_throughput")
        .field_str(
            "workload",
            "mesh:16x16, transpose, load 0.08, warmup 1000 + measure 4000 + drain, seed 42",
        )
        .field_str(
            "table_cost_model",
            "table built once outside the timed loop and shared, as the sweep executor amortizes it across a series' cells",
        )
        .field_str(
            "baseline",
            "commit 1dec775 (pre-optimisation), same host and workload",
        )
        .field_num("run_cycles", wf_cycles as f64)
        .result("west_first_table_on", &r_wf_on)
        .result("west_first_table_off", &r_wf_off)
        .result("xy_table_on", &r_xy_on)
        .field_num("west_first_cycles_per_sec", wf_cps.round())
        .field_num("west_first_cycles_per_sec_table_off", wf_cps_off.round())
        .field_num("xy_cycles_per_sec", xy_cps.round())
        .field_num("baseline_west_first_cycles_per_sec", BASELINE_WEST_FIRST_CPS)
        .field_num("baseline_xy_cycles_per_sec", BASELINE_XY_CPS)
        .field_num(
            "west_first_speedup_vs_baseline",
            (wf_cps / BASELINE_WEST_FIRST_CPS * 100.0).round() / 100.0,
        )
        .field_num(
            "xy_speedup_vs_baseline",
            (xy_cps / BASELINE_XY_CPS * 100.0).round() / 100.0,
        )
        .field_bool("reports_identical_table_on_vs_off", identical)
        .write(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json"));
}
