//! Engine hot-path throughput, recorded to `BENCH_engine.json` at the
//! repo root: simulated cycles per second on the standard 16x16-mesh
//! transpose workloads, with the precomputed route table on and off,
//! against the last recorded pre-optimisation baseline.
//!
//! The workload itself lives in [`turnroute_bench::workloads`] so this
//! bench, the `bench_record` regression gate, and `scripts/bench.sh`
//! all measure the same thing. The baseline constants there were
//! measured on this host at commit 1dec775 (before the allocation-free
//! hot path and route tables); re-measure them from that commit if the
//! workload ever changes.

use turnroute_bench::workloads::{
    measure_engine, measure_engine_mmpp, measure_engine_sharded, render_engine_json,
    BASELINE_WEST_FIRST_CPS, BASELINE_XY_CPS,
};

fn main() {
    let m = measure_engine(10);
    println!(
        "west-first: {:.0} cycles/sec (table off: {:.0}, baseline {BASELINE_WEST_FIRST_CPS:.0})",
        m.west_first_cps, m.west_first_cps_table_off
    );
    println!(
        "xy:         {:.0} cycles/sec (baseline {BASELINE_XY_CPS:.0})",
        m.xy_cps
    );
    let s = measure_engine_sharded(10);
    println!(
        "mesh64:     {:.0} cycles/sec sharded x{} ({:.2}x vs serial {:.0})",
        s.sharded_cps, s.shards, s.speedup, s.serial_cps
    );
    let p = measure_engine_mmpp(10);
    println!(
        "mmpp:       {:.0} cycles/sec (bursty 96/288 injection)",
        p.mmpp_cps
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, render_engine_json(&m, &s, &p))
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
