//! Microbenchmarks of the per-hop routing decision — the paper's
//! Section 7 concern that adaptive route selection "may increase node
//! delay".

use std::hint::black_box;
use turnroute_bench::timing::Harness;
use turnroute_core::{DimensionOrder, NegativeFirst, PCube, RoutingAlgorithm, WestFirst};
use turnroute_topology::{Hypercube, Mesh, NodeId};

fn mesh_decisions(h: &mut Harness) {
    let mesh = Mesh::new_2d(16, 16);
    let pairs: Vec<(NodeId, NodeId)> = (0..64)
        .map(|i| (NodeId::new(i * 3 % 256), NodeId::new((i * 7 + 13) % 256)))
        .filter(|(s, d)| s != d)
        .collect();
    let algos: Vec<(&str, Box<dyn RoutingAlgorithm>)> = vec![
        ("xy", Box::new(DimensionOrder::new())),
        ("west-first", Box::new(WestFirst::minimal())),
        ("negative-first", Box::new(NegativeFirst::minimal())),
        ("west-first-nonminimal", Box::new(WestFirst::nonminimal())),
    ];
    for (name, algo) in &algos {
        h.bench(&format!("route-2d-mesh/{name}"), || {
            let mut acc = 0usize;
            for &(s, d) in &pairs {
                acc += algo.route(&mesh, s, d, None).len();
            }
            black_box(acc)
        });
    }
}

fn hypercube_decisions(h: &mut Harness) {
    let cube = Hypercube::new(8);
    let pairs: Vec<(NodeId, NodeId)> = (0..64)
        .map(|i| (NodeId::new(i * 5 % 256), NodeId::new((i * 11 + 7) % 256)))
        .filter(|(s, d)| s != d)
        .collect();
    let algos: Vec<(&str, Box<dyn RoutingAlgorithm>)> = vec![
        ("e-cube", Box::new(DimensionOrder::new())),
        ("p-cube", Box::new(PCube::minimal())),
        ("p-cube-nonminimal", Box::new(PCube::nonminimal())),
    ];
    for (name, algo) in &algos {
        h.bench(&format!("route-8-cube/{name}"), || {
            let mut acc = 0usize;
            for &(s, d) in &pairs {
                acc += algo.route(&cube, s, d, None).len();
            }
            black_box(acc)
        });
    }
}

fn main() {
    let mut h = Harness::new().sample_size(20);
    mesh_decisions(&mut h);
    hypercube_decisions(&mut h);
}
