//! Benchmarks of the wormhole engine itself: simulated cycles per
//! second on the paper's two topologies at moderate load.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use turnroute_core::{NegativeFirst, PCube};
use turnroute_sim::{patterns, SimConfig, Simulation};
use turnroute_topology::{HexMesh, Hypercube, Mesh};
use turnroute_vc::{MadY, VcSimulation};

fn mesh_engine(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let algo = NegativeFirst::minimal();
    c.bench_function("sim-2000-cycles-16x16-mesh-transpose", |b| {
        b.iter(|| {
            let config = SimConfig::paper()
                .injection_rate(0.06)
                .warmup_cycles(0)
                .measure_cycles(0)
                .seed(42);
            let mut sim = Simulation::new(&mesh, &algo, &patterns::Transpose, config);
            for _ in 0..2_000 {
                sim.step();
            }
            black_box(sim.cycle())
        })
    });
}

fn cube_engine(c: &mut Criterion) {
    let cube = Hypercube::new(8);
    let algo = PCube::minimal();
    c.bench_function("sim-2000-cycles-8cube-reverse-flip", |b| {
        b.iter(|| {
            let config = SimConfig::paper()
                .injection_rate(0.1)
                .warmup_cycles(0)
                .measure_cycles(0)
                .seed(42);
            let mut sim = Simulation::new(&cube, &algo, &patterns::ReverseFlip, config);
            for _ in 0..2_000 {
                sim.step();
            }
            black_box(sim.cycle())
        })
    });
}

fn vc_engine(c: &mut Criterion) {
    let mesh = Mesh::new_2d(16, 16);
    let mady = MadY::new();
    c.bench_function("vcsim-2000-cycles-16x16-mady-transpose", |b| {
        b.iter(|| {
            let config = SimConfig::paper()
                .injection_rate(0.06)
                .warmup_cycles(0)
                .measure_cycles(0)
                .seed(42);
            let mut sim = VcSimulation::new(&mesh, &mady, &patterns::Transpose, config);
            for _ in 0..2_000 {
                sim.step();
            }
            black_box(sim.cycle())
        })
    });
}

fn hex_engine(c: &mut Criterion) {
    let hex = HexMesh::new(16, 16);
    let algo = NegativeFirst::with_dims(3, true);
    c.bench_function("sim-2000-cycles-16x16-hex-uniform", |b| {
        b.iter(|| {
            let config = SimConfig::paper()
                .injection_rate(0.08)
                .warmup_cycles(0)
                .measure_cycles(0)
                .seed(42);
            let mut sim = Simulation::new(&hex, &algo, &patterns::Uniform, config);
            for _ in 0..2_000 {
                sim.step();
            }
            black_box(sim.cycle())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = mesh_engine, cube_engine, vc_engine, hex_engine
}
criterion_main!(benches);
