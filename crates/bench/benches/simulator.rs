//! Benchmarks of the wormhole engine itself: simulated cycles per
//! second on the paper's two topologies at moderate load.

use std::hint::black_box;
use turnroute_bench::timing::Harness;
use turnroute_core::{NegativeFirst, PCube};
use turnroute_sim::{patterns, SimConfig, Simulation};
use turnroute_topology::{HexMesh, Hypercube, Mesh};
use turnroute_vc::{MadY, VcSimulation};

fn mesh_engine(h: &mut Harness) {
    let mesh = Mesh::new_2d(16, 16);
    let algo = NegativeFirst::minimal();
    h.bench("sim-2000-cycles-16x16-mesh-transpose", || {
        let config = SimConfig::paper()
            .injection_rate(0.06)
            .warmup_cycles(0)
            .measure_cycles(0)
            .seed(42);
        let mut sim = Simulation::new(&mesh, &algo, &patterns::Transpose, config);
        for _ in 0..2_000 {
            sim.step();
        }
        black_box(sim.cycle())
    });
}

fn cube_engine(h: &mut Harness) {
    let cube = Hypercube::new(8);
    let algo = PCube::minimal();
    h.bench("sim-2000-cycles-8cube-reverse-flip", || {
        let config = SimConfig::paper()
            .injection_rate(0.1)
            .warmup_cycles(0)
            .measure_cycles(0)
            .seed(42);
        let mut sim = Simulation::new(&cube, &algo, &patterns::ReverseFlip, config);
        for _ in 0..2_000 {
            sim.step();
        }
        black_box(sim.cycle())
    });
}

fn vc_engine(h: &mut Harness) {
    let mesh = Mesh::new_2d(16, 16);
    let mady = MadY::new();
    h.bench("vcsim-2000-cycles-16x16-mady-transpose", || {
        let config = SimConfig::paper()
            .injection_rate(0.06)
            .warmup_cycles(0)
            .measure_cycles(0)
            .seed(42);
        let mut sim = VcSimulation::new(&mesh, &mady, &patterns::Transpose, config);
        for _ in 0..2_000 {
            sim.step();
        }
        black_box(sim.cycle())
    });
}

fn hex_engine(h: &mut Harness) {
    let hex = HexMesh::new(16, 16);
    let algo = NegativeFirst::with_dims(3, true);
    h.bench("sim-2000-cycles-16x16-hex-uniform", || {
        let config = SimConfig::paper()
            .injection_rate(0.08)
            .warmup_cycles(0)
            .measure_cycles(0)
            .seed(42);
        let mut sim = Simulation::new(&hex, &algo, &patterns::Uniform, config);
        for _ in 0..2_000 {
            sim.step();
        }
        black_box(sim.cycle())
    });
}

fn main() {
    let mut h = Harness::new().sample_size(10);
    mesh_engine(&mut h);
    cube_engine(&mut h);
    vc_engine(&mut h);
    hex_engine(&mut h);
}
