//! A routing relation with failed channels pruned out.

use crate::FaultSchedule;
use turnroute_core::RoutingAlgorithm;
use turnroute_topology::{DirSet, Direction, NodeId, Topology};

/// Wraps any [`RoutingAlgorithm`] and removes directions whose output
/// channel is failed — the relation a fault-aware router actually
/// follows under a *fixed* fault set.
///
/// Unlike a healthy relation, the pruned one may legitimately return an
/// empty set away from the destination: that is a stranded state, and
/// [`verify`](crate::verify) exists to find every (src, dst) pair that
/// can reach one. The wrapper stays
/// [`is_tabulable`](RoutingAlgorithm::is_tabulable) whenever the inner
/// algorithm is, because the fault set it holds is immutable — a route
/// table built from it is valid for as long as that fault set is.
///
/// # Example
///
/// ```
/// use turnroute_fault::FaultedRelation;
/// use turnroute_core::{RoutingAlgorithm, WestFirst};
/// use turnroute_topology::{Direction, Mesh, Topology};
///
/// let mesh = Mesh::new_2d(4, 4);
/// let wf = WestFirst::minimal();
/// let src = mesh.node_at(&[2, 2].into());
/// let dst = mesh.node_at(&[0, 2].into());
/// let west = mesh.channel_from(src, Direction::WEST).unwrap();
///
/// let mut failed = vec![false; mesh.num_channels()];
/// failed[west.index()] = true;
/// let pruned = FaultedRelation::new(&wf, &mesh, failed);
/// // West-first must go west here, but the west link is dead:
/// assert!(pruned.route(&mesh, src, dst, None).is_empty());
/// ```
pub struct FaultedRelation<'a> {
    inner: &'a dyn RoutingAlgorithm,
    failed: Vec<bool>,
}

impl<'a> FaultedRelation<'a> {
    /// Prunes `inner` by the given per-channel failed flags, which must
    /// be indexed by the channel ids of `topo` (the topology later
    /// passed to [`route`](RoutingAlgorithm::route)).
    ///
    /// # Panics
    ///
    /// Panics if `failed.len() != topo.num_channels()`.
    pub fn new(inner: &'a dyn RoutingAlgorithm, topo: &dyn Topology, failed: Vec<bool>) -> Self {
        assert_eq!(
            failed.len(),
            topo.num_channels(),
            "failed-flag vector does not match the topology's channel count"
        );
        FaultedRelation { inner, failed }
    }

    /// Prunes `inner` by a schedule's cycle-0 fault set. Appropriate
    /// for [static](FaultSchedule::is_static) schedules, where that set
    /// never changes.
    pub fn from_schedule(
        inner: &'a dyn RoutingAlgorithm,
        topo: &dyn Topology,
        schedule: &FaultSchedule,
    ) -> Self {
        Self::new(inner, topo, schedule.failed_at_start())
    }

    /// The per-channel failed flags this relation prunes by.
    pub fn failed(&self) -> &[bool] {
        &self.failed
    }
}

impl RoutingAlgorithm for FaultedRelation<'_> {
    fn name(&self) -> String {
        format!("{}+faults", self.inner.name())
    }

    fn route(
        &self,
        topo: &dyn Topology,
        current: NodeId,
        dest: NodeId,
        arrived: Option<Direction>,
    ) -> DirSet {
        let mut dirs = self.inner.route(topo, current, dest, arrived);
        for dir in dirs {
            match topo.channel_from(current, dir) {
                Some(c) if !self.failed[c.index()] => {}
                _ => dirs.remove(dir),
            }
        }
        dirs
    }

    fn is_adaptive(&self) -> bool {
        self.inner.is_adaptive()
    }

    fn is_minimal(&self) -> bool {
        self.inner.is_minimal()
    }

    fn is_tabulable(&self) -> bool {
        self.inner.is_tabulable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use turnroute_core::{NegativeFirst, WestFirst};
    use turnroute_topology::Mesh;

    #[test]
    fn prunes_exactly_the_failed_channels() {
        let mesh = Mesh::new_2d(4, 4);
        let nf = NegativeFirst::minimal();
        let src = mesh.node_at(&[2, 2].into());
        let dst = mesh.node_at(&[0, 0].into());
        // Negative-first offers both west and south here.
        let healthy = nf.route(&mesh, src, dst, None);
        assert_eq!(healthy.len(), 2);
        let west = mesh.channel_from(src, Direction::WEST).unwrap();

        let mut failed = vec![false; mesh.num_channels()];
        failed[west.index()] = true;
        let pruned = FaultedRelation::new(&nf, &mesh, failed);
        let dirs = pruned.route(&mesh, src, dst, None);
        assert_eq!(dirs.iter().collect::<Vec<_>>(), vec![Direction::SOUTH]);
        // Channels elsewhere are untouched.
        let other = mesh.node_at(&[3, 3].into());
        assert_eq!(
            pruned.route(&mesh, other, dst, None),
            nf.route(&mesh, other, dst, None)
        );
    }

    #[test]
    fn no_faults_is_the_identity() {
        let mesh = Mesh::new_2d(4, 4);
        let wf = WestFirst::minimal();
        let pruned = FaultedRelation::new(&wf, &mesh, vec![false; mesh.num_channels()]);
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                assert_eq!(
                    pruned.route(&mesh, src, dst, None),
                    wf.route(&mesh, src, dst, None)
                );
            }
        }
    }

    #[test]
    fn forwards_algorithm_properties() {
        let mesh = Mesh::new_2d(4, 4);
        let wf = WestFirst::minimal();
        let schedule = FaultPlan::new().compile(&mesh).unwrap();
        let pruned = FaultedRelation::from_schedule(&wf, &mesh, &schedule);
        assert_eq!(pruned.name(), "west-first+faults");
        assert_eq!(pruned.is_adaptive(), wf.is_adaptive());
        assert_eq!(pruned.is_minimal(), wf.is_minimal());
        assert!(pruned.is_tabulable());
    }

    #[test]
    #[should_panic(expected = "channel count")]
    fn rejects_mismatched_flag_vector() {
        let mesh = Mesh::new_2d(4, 4);
        let wf = WestFirst::minimal();
        let _ = FaultedRelation::new(&wf, &mesh, vec![false; 3]);
    }
}
