//! Deadlock-freedom and reachability verification for faulted relations.
//!
//! A fault set changes a routing relation in two ways that matter: it
//! can *disconnect* pairs (some reachable routing state offers no
//! healthy direction, so an adaptive router can strand a packet), and —
//! although pruning only ever removes channel dependences — the
//! workspace's deadlock check should be re-run on exactly the relation
//! the faulted network follows. [`verify`] does both with one walk per
//! destination over the pruned relation's reachable states, the same
//! walk the route-table builder uses.

use std::collections::BTreeSet;
use std::fmt;

use turnroute_core::{ChannelDependencyGraph, RoutingAlgorithm};
use turnroute_topology::{ChannelId, Direction, NodeId, Topology};

/// The result of [`verify`]: whether the pruned relation keeps the turn
/// model's guarantees, with witnesses when it does not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// `true` if the pruned channel-dependence graph (restricted to
    /// reachable states) is acyclic.
    pub acyclic: bool,
    /// A dependence cycle witness (channel sequence), empty if acyclic.
    pub cycle: Vec<ChannelId>,
    /// Pairs `(src, dst)` for which some reachable routing state offers
    /// no healthy direction — an adaptive router may strand a packet of
    /// this pair, and for deterministic routers it certainly will.
    pub disconnected: Vec<(NodeId, NodeId)>,
    /// Nodes with no healthy outgoing or no healthy incoming channel:
    /// they cannot source or sink traffic at all. Every pair touching
    /// one also appears in `disconnected`.
    pub dead_nodes: Vec<NodeId>,
    /// Number of ordered `(src, dst)` pairs examined.
    pub checked_pairs: usize,
}

impl VerifyReport {
    /// `true` if the faulted relation is still deadlock free and every
    /// pair remains deliverable.
    pub fn is_ok(&self) -> bool {
        self.acyclic && self.disconnected.is_empty()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(
                f,
                "fault-tolerant: deadlock free, all {} pairs deliverable",
                self.checked_pairs
            );
        }
        if self.acyclic {
            write!(f, "deadlock free")?;
        } else {
            write!(f, "DEADLOCK: {}-channel dependence cycle", self.cycle.len())?;
        }
        write!(
            f,
            ", {} of {} pairs disconnected",
            self.disconnected.len(),
            self.checked_pairs
        )?;
        if let Some((src, dst)) = self.disconnected.first() {
            write!(f, " (first: {src} -> {dst})")?;
        }
        if !self.dead_nodes.is_empty() {
            write!(f, ", {} dead node(s)", self.dead_nodes.len())?;
        }
        Ok(())
    }
}

/// Checks `algorithm` pruned by the `failed` channel flags on `topo`.
///
/// For every destination the verifier walks the states the pruned
/// relation can produce — a state is either a packet still at its
/// source or a packet occupying a channel — and collects (1) every
/// channel-to-channel dependence the walk exercises and (2) every state
/// whose pruned direction set is empty. The relation passes if the
/// dependence graph is acyclic (Dally–Seitz, on exactly the reachable
/// dependences) *and* no source can reach an empty-set state, i.e.
/// delivery is guaranteed no matter which permitted direction an
/// adaptive router picks. This is the conservative criterion: a pair is
/// reported disconnected as soon as stranding is *possible*, which for
/// deterministic relations coincides with it being certain.
///
/// # Panics
///
/// Panics if `failed.len() != topo.num_channels()`.
///
/// # Example
///
/// ```
/// use turnroute_fault::verify;
/// use turnroute_core::WestFirst;
/// use turnroute_topology::{Mesh, Topology};
///
/// let mesh = Mesh::new_2d(4, 4);
/// let wf = WestFirst::minimal();
/// let healthy = verify(&mesh, &wf, &vec![false; mesh.num_channels()]);
/// assert!(healthy.is_ok());
/// assert_eq!(healthy.checked_pairs, 16 * 15);
/// ```
pub fn verify(
    topo: &dyn Topology,
    algorithm: &dyn RoutingAlgorithm,
    failed: &[bool],
) -> VerifyReport {
    let num_channels = topo.num_channels();
    let num_nodes = topo.num_nodes();
    assert_eq!(
        failed.len(),
        num_channels,
        "failed-flag vector does not match the topology's channel count"
    );
    let channels = topo.channels();

    let dead_nodes: Vec<NodeId> = topo
        .nodes()
        .filter(|&n| {
            let mut healthy_out = false;
            let mut healthy_in = false;
            for (i, ch) in channels.iter().enumerate() {
                if failed[i] {
                    continue;
                }
                healthy_out |= ch.src == n;
                healthy_in |= ch.dst == n;
            }
            !(healthy_out && healthy_in)
        })
        .collect();

    // States, per destination: 0..C is "header occupies channel c",
    // C..C+N is "packet still queued at source node s".
    let num_states = num_channels + num_nodes;
    let source_state = |n: NodeId| num_channels + n.index();

    // Channel-dependence successors, unioned over destinations.
    let mut cdg: Vec<BTreeSet<ChannelId>> = vec![BTreeSet::new(); num_channels];
    let mut disconnected = Vec::new();
    let mut checked_pairs = 0;

    // Walk buffers, reused across destinations.
    let mut visited = vec![false; num_states];
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); num_states];
    let mut stack: Vec<usize> = Vec::new();
    let mut stuck: Vec<usize> = Vec::new();

    for dest in topo.nodes() {
        for buf in &mut rev {
            buf.clear();
        }
        visited.fill(false);
        stuck.clear();
        for src in topo.nodes() {
            if src != dest {
                checked_pairs += 1;
                let s = source_state(src);
                visited[s] = true;
                stack.push(s);
            }
        }
        while let Some(state) = stack.pop() {
            let (node, arrived, via): (NodeId, Option<Direction>, Option<ChannelId>) =
                if state < num_channels {
                    let ch = channels[state];
                    (ch.dst, Some(ch.dir), Some(ChannelId::new(state)))
                } else {
                    (NodeId::new(state - num_channels), None, None)
                };
            if node == dest {
                continue; // delivered
            }
            let mut dirs = algorithm.route(topo, node, dest, arrived);
            for dir in dirs {
                match topo.channel_from(node, dir) {
                    Some(c) if !failed[c.index()] => {}
                    _ => dirs.remove(dir),
                }
            }
            if dirs.is_empty() {
                stuck.push(state);
                continue;
            }
            for dir in dirs {
                let next = topo
                    .channel_from(node, dir)
                    .expect("pruned set only contains existing channels");
                if let Some(holding) = via {
                    cdg[holding.index()].insert(next);
                }
                rev[next.index()].push(state as u32);
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push(next.index());
                }
            }
        }
        // A source is disconnected from `dest` iff it can reach a stuck
        // state: reverse reachability from the stuck set.
        if stuck.is_empty() {
            continue;
        }
        let mut can_strand = vec![false; num_states];
        let mut queue = std::mem::take(&mut stuck);
        for &s in &queue {
            can_strand[s] = true;
        }
        while let Some(state) = queue.pop() {
            for &pred in &rev[state] {
                if !can_strand[pred as usize] {
                    can_strand[pred as usize] = true;
                    queue.push(pred as usize);
                }
            }
        }
        stuck = queue; // give the (now empty) buffer back
        for src in topo.nodes() {
            if src != dest && can_strand[source_state(src)] {
                disconnected.push((src, dest));
            }
        }
    }

    let graph = ChannelDependencyGraph::from_successors(
        cdg.into_iter()
            .map(|set| set.into_iter().collect())
            .collect(),
    );
    let cycle = graph.find_cycle().unwrap_or_default();
    VerifyReport {
        acyclic: cycle.is_empty(),
        cycle,
        disconnected,
        dead_nodes,
        checked_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use turnroute_core::TurnSet;
    use turnroute_core::{DimensionOrder, NegativeFirst, TurnSetRouting, WestFirst};
    use turnroute_topology::Mesh;

    fn no_faults(topo: &dyn Topology) -> Vec<bool> {
        vec![false; topo.num_channels()]
    }

    #[test]
    fn healthy_relations_pass() {
        let mesh = Mesh::new_2d(6, 6);
        for algo in [
            Box::new(DimensionOrder::new()) as Box<dyn RoutingAlgorithm>,
            Box::new(WestFirst::minimal()),
            Box::new(NegativeFirst::minimal()),
        ] {
            let report = verify(&mesh, &algo, &no_faults(&mesh));
            assert!(report.is_ok(), "{}: {report}", algo.name());
            assert_eq!(report.checked_pairs, 36 * 35);
            assert!(report.dead_nodes.is_empty());
        }
    }

    #[test]
    fn unrestricted_turns_fail_the_cycle_check_even_unfaulted() {
        let mesh = Mesh::new_2d(4, 4);
        let fully = TurnSetRouting::new(TurnSet::fully_adaptive(2));
        let report = verify(&mesh, &fully, &no_faults(&mesh));
        assert!(!report.acyclic);
        assert!(!report.cycle.is_empty());
        assert!(!report.is_ok());
    }

    #[test]
    fn rejects_a_fault_set_that_disconnects_the_mesh() {
        // Fail every channel touching a corner node: nothing can reach
        // it or leave it. The verifier must reject this for any
        // algorithm rather than letting the simulator strand packets.
        let mesh = Mesh::new_2d(4, 4);
        let corner = mesh.node_at(&[0, 0].into());
        let schedule = FaultPlan::new().node(corner, 0).compile(&mesh).unwrap();
        let failed = schedule.failed_at_start();
        for algo in [
            Box::new(DimensionOrder::new()) as Box<dyn RoutingAlgorithm>,
            Box::new(WestFirst::minimal()),
            Box::new(NegativeFirst::minimal()),
        ] {
            let report = verify(&mesh, &algo, &failed);
            assert!(!report.is_ok(), "{} accepted a cut-off node", algo.name());
            assert_eq!(report.dead_nodes, vec![corner]);
            // All 15 pairs into the corner and all 15 out of it are lost.
            assert!(report.disconnected.len() >= 30, "{report}");
            assert!(report.acyclic, "pruning cannot create cycles");
        }
    }

    #[test]
    fn single_link_fault_disconnects_exactly_the_crossing_pairs_for_xy() {
        let mesh = Mesh::new_2d(4, 4);
        // Fail the eastward link (1,1) -> (2,1).
        let node = mesh.node_at(&[1, 1].into());
        let east = mesh.channel_from(node, Direction::EAST).unwrap();
        let mut failed = no_faults(&mesh);
        failed[east.index()] = true;

        // xy is deterministic (x before y), so a pair is lost iff its
        // one path crosses the dead link: src in row 1 with x <= 1,
        // dst with x >= 2 — 2 sources x 8 destinations.
        let xy = DimensionOrder::new();
        let report = verify(&mesh, &xy, &failed);
        assert!(!report.is_ok());
        assert!(report.dead_nodes.is_empty());
        assert!(report.acyclic);
        assert_eq!(report.disconnected.len(), 16, "{report}");
        assert!(report
            .disconnected
            .contains(&(node, mesh.node_at(&[2, 1].into()))));

        // West-first is adaptive, and the criterion is conservative: a
        // pair counts as disconnected as soon as *some* adaptive choice
        // strands. The forced pair is still certainly lost, while pairs
        // that never approach the link are untouched.
        let wf = WestFirst::minimal();
        let wf_report = verify(&mesh, &wf, &failed);
        assert!(wf_report
            .disconnected
            .contains(&(node, mesh.node_at(&[2, 1].into()))));
        assert!(!wf_report
            .disconnected
            .contains(&(mesh.node_at(&[3, 3].into()), mesh.node_at(&[0, 0].into()))));
    }

    #[test]
    fn display_formats_both_verdicts() {
        let mesh = Mesh::new_2d(3, 3);
        let xy = DimensionOrder::new();
        let ok = verify(&mesh, &xy, &no_faults(&mesh));
        assert_eq!(
            ok.to_string(),
            "fault-tolerant: deadlock free, all 72 pairs deliverable"
        );
        let corner = mesh.node_at(&[2, 2].into());
        let schedule = FaultPlan::new().node(corner, 0).compile(&mesh).unwrap();
        let bad = verify(&mesh, &xy, &schedule.failed_at_start());
        let text = bad.to_string();
        assert!(text.contains("disconnected"), "{text}");
        assert!(text.contains("dead node"), "{text}");
    }
}
