//! Declarative fault plans and their compiled schedules.
//!
//! A [`FaultPlan`] names *what* fails and *when*, in topology-agnostic
//! terms (channel ids, node ids or coordinates, coordinate boxes, or a
//! seed-derived random draw). [`FaultPlan::compile`] resolves it against
//! a concrete topology into a [`FaultSchedule`]: a merged, cycle-ordered
//! list of per-channel fail/repair events that a simulator replays with
//! a single cursor.

use std::fmt;

use turnroute_rng::{Rng, StdRng};
use turnroute_topology::{ChannelId, Coord, NodeId, Topology};

/// What a single [`Fault`] takes down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// One unidirectional channel.
    Channel(ChannelId),
    /// A router given by dense id: every channel entering or leaving it.
    Node(NodeId),
    /// A router given by coordinate: every channel entering or leaving it.
    NodeAt(Coord),
    /// A rectangular block of routers (inclusive corner coordinates):
    /// every channel with an endpoint inside the block. This is the
    /// classic *block-fault* model of the fault-tolerant routing
    /// literature.
    Region {
        /// Componentwise lower corner (inclusive).
        min: Coord,
        /// Componentwise upper corner (inclusive).
        max: Coord,
    },
    /// `count` distinct channels drawn by a seeded Fisher–Yates shuffle
    /// of all channel ids. The draw is *prefix-nested*: for a fixed
    /// seed, the channels failed at `count = k` are a subset of those
    /// failed at `count = k + 1`, so degradation sweeps add faults
    /// monotonically.
    Random {
        /// Number of channels to fail.
        count: usize,
        /// Seed of the shuffle.
        seed: u64,
    },
}

/// One scheduled fault: a target, the cycle it goes down, and the cycle
/// it comes back (or `None` for a permanent fault).
///
/// Injection at cycle `c` means the target is unusable from the start of
/// cycle `c`; repair at cycle `r` means it is usable again from the
/// start of cycle `r` (so the outage spans the half-open interval
/// `[c, r)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// What fails.
    pub target: FaultTarget,
    /// First cycle of the outage.
    pub inject_at: u64,
    /// First cycle after the outage, `None` if permanent.
    pub repair_at: Option<u64>,
}

/// An error from parsing or compiling a fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    message: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for FaultPlanError {}

fn err<T>(message: impl Into<String>) -> Result<T, FaultPlanError> {
    Err(FaultPlanError {
        message: message.into(),
    })
}

/// A deterministic, declarative schedule of faults.
///
/// Build one with the chainable constructors, or parse the CLI spec
/// grammar with [`FaultPlan::parse`]; then [`compile`](FaultPlan::compile)
/// it against a topology to obtain the [`FaultSchedule`] a simulator
/// replays.
///
/// # Spec grammar
///
/// Faults are joined with `+`; each is a target, optionally followed by
/// `@<inject>` (default `@0`) or `@<inject>..<repair>`:
///
/// ```text
/// chan:17              channel 17, permanently failed from cycle 0
/// node:3,4@100         all channels touching router (3,4), from cycle 100
/// node:12@100..5000    router with dense id 12, down for cycles [100, 5000)
/// region:2,2-4,3       block fault over routers (2..=4, 2..=3)
/// random:6:99          6 seed-99 random channels, permanent
/// chan:1+chan:2@10     two faults in one plan
/// ```
///
/// # Example
///
/// ```
/// use turnroute_fault::FaultPlan;
/// use turnroute_topology::Mesh;
///
/// let mesh = Mesh::new_2d(4, 4);
/// let plan = FaultPlan::parse("node:1,1@0..500+random:2:7").unwrap();
/// let schedule = plan.compile(&mesh).unwrap();
/// assert!(schedule.has_repairs());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// The faults in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds an arbitrary fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Permanently fails one channel from `inject_at`.
    pub fn channel(self, channel: ChannelId, inject_at: u64) -> Self {
        self.with(Fault {
            target: FaultTarget::Channel(channel),
            inject_at,
            repair_at: None,
        })
    }

    /// Fails one channel for the cycles `[inject_at, repair_at)`.
    pub fn channel_transient(self, channel: ChannelId, inject_at: u64, repair_at: u64) -> Self {
        self.with(Fault {
            target: FaultTarget::Channel(channel),
            inject_at,
            repair_at: Some(repair_at),
        })
    }

    /// Permanently fails every channel touching `node` from `inject_at`.
    pub fn node(self, node: NodeId, inject_at: u64) -> Self {
        self.with(Fault {
            target: FaultTarget::Node(node),
            inject_at,
            repair_at: None,
        })
    }

    /// Fails every channel touching `node` for `[inject_at, repair_at)`.
    pub fn node_transient(self, node: NodeId, inject_at: u64, repair_at: u64) -> Self {
        self.with(Fault {
            target: FaultTarget::Node(node),
            inject_at,
            repair_at: Some(repair_at),
        })
    }

    /// Permanently fails a rectangular block of routers (inclusive
    /// corners) from `inject_at`.
    pub fn region(self, min: Coord, max: Coord, inject_at: u64) -> Self {
        self.with(Fault {
            target: FaultTarget::Region { min, max },
            inject_at,
            repair_at: None,
        })
    }

    /// Permanently fails `count` seed-derived random channels from
    /// cycle 0. See [`FaultTarget::Random`] for the nesting guarantee.
    pub fn random_channels(self, count: usize, seed: u64) -> Self {
        self.with(Fault {
            target: FaultTarget::Random { count, seed },
            inject_at: 0,
            repair_at: None,
        })
    }

    /// Parses the spec grammar documented on [`FaultPlan`].
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::new();
        for part in spec.split('+') {
            let part = part.trim();
            if part.is_empty() {
                return err(format!("empty fault in spec '{spec}'"));
            }
            plan.faults.push(parse_fault(part)?);
        }
        Ok(plan)
    }

    /// Resolves the plan against `topo` into a replayable event
    /// schedule. Overlapping outages of the same channel are merged, so
    /// the schedule never fails an already-failed channel or repairs a
    /// channel another fault still holds down.
    ///
    /// Fails if a target does not exist on `topo`, a region is empty or
    /// out of range, a repair does not come after its injection, or a
    /// random draw asks for more channels than the topology has.
    pub fn compile(&self, topo: &dyn Topology) -> Result<FaultSchedule, FaultPlanError> {
        let num_channels = topo.num_channels();
        // Expand every fault into per-channel outage intervals
        // [inject, repair) with u64::MAX standing in for "never".
        let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); num_channels];
        for fault in &self.faults {
            let end = match fault.repair_at {
                Some(r) if r <= fault.inject_at => {
                    return err(format!(
                        "repair cycle {r} does not follow injection cycle {}",
                        fault.inject_at
                    ));
                }
                Some(r) => r,
                None => u64::MAX,
            };
            for channel in expand_target(&fault.target, topo)? {
                intervals[channel.index()].push((fault.inject_at, end));
            }
        }
        let mut events = Vec::new();
        for (index, spans) in intervals.iter_mut().enumerate() {
            spans.sort_unstable();
            let channel = ChannelId::new(index);
            let mut merged: Option<(u64, u64)> = None;
            for &(start, end) in spans.iter() {
                match merged {
                    Some((s, e)) if start <= e => merged = Some((s, e.max(end))),
                    Some((s, e)) => {
                        push_outage(&mut events, channel, s, e);
                        merged = Some((start, end));
                    }
                    None => merged = Some((start, end)),
                }
            }
            if let Some((s, e)) = merged {
                push_outage(&mut events, channel, s, e);
            }
        }
        // Cycle-major order with a deterministic tiebreak: repairs
        // before failures within a cycle (a channel that comes back the
        // same cycle another goes down frees capacity first), then
        // channel id.
        events.sort_unstable_by_key(|e: &FaultEvent| (e.cycle, e.fail, e.channel));
        Ok(FaultSchedule {
            events,
            num_channels,
        })
    }
}

fn push_outage(events: &mut Vec<FaultEvent>, channel: ChannelId, start: u64, end: u64) {
    events.push(FaultEvent {
        cycle: start,
        channel,
        fail: true,
    });
    if end != u64::MAX {
        events.push(FaultEvent {
            cycle: end,
            channel,
            fail: false,
        });
    }
}

/// The channels a target resolves to, in ascending id order.
fn expand_target(
    target: &FaultTarget,
    topo: &dyn Topology,
) -> Result<Vec<ChannelId>, FaultPlanError> {
    match target {
        FaultTarget::Channel(c) => {
            if c.index() >= topo.num_channels() {
                return err(format!(
                    "channel {} out of range ({} has {} channels)",
                    c.index(),
                    topo.label(),
                    topo.num_channels()
                ));
            }
            Ok(vec![*c])
        }
        FaultTarget::Node(n) => {
            if n.index() >= topo.num_nodes() {
                return err(format!(
                    "node {} out of range ({} has {} nodes)",
                    n.index(),
                    topo.label(),
                    topo.num_nodes()
                ));
            }
            Ok(incident_channels(topo, |node| node == *n))
        }
        FaultTarget::NodeAt(coord) => {
            validate_coord(coord, topo)?;
            let n = topo.node_at(coord);
            Ok(incident_channels(topo, |node| node == n))
        }
        FaultTarget::Region { min, max } => {
            validate_coord(min, topo)?;
            validate_coord(max, topo)?;
            for dim in 0..topo.num_dims() {
                if min.get(dim) > max.get(dim) {
                    return err(format!(
                        "empty fault region: min {:?} exceeds max {:?} in dimension {dim}",
                        min.components(),
                        max.components()
                    ));
                }
            }
            let inside = |node: NodeId| {
                let c = topo.coord_of(node);
                (0..topo.num_dims()).all(|d| min.get(d) <= c.get(d) && c.get(d) <= max.get(d))
            };
            Ok(incident_channels(topo, inside))
        }
        FaultTarget::Random { count, seed } => {
            let total = topo.num_channels();
            if *count > total {
                return err(format!(
                    "cannot fail {count} random channels: {} has only {total}",
                    topo.label()
                ));
            }
            let mut ids: Vec<usize> = (0..total).collect();
            let mut rng = StdRng::seed_from_u64(*seed);
            // Full Fisher–Yates shuffle regardless of `count`, then a
            // fixed slice of it: because the shuffle itself does not
            // depend on `count`, growing the slice only ever adds
            // channels — the prefix-nesting property.
            for i in (1..total).rev() {
                let j = rng.random_range(0..=i);
                ids.swap(i, j);
            }
            let mut picked: Vec<ChannelId> = ids[total - count..]
                .iter()
                .map(|&i| ChannelId::new(i))
                .collect();
            picked.sort_unstable();
            Ok(picked)
        }
    }
}

fn incident_channels(topo: &dyn Topology, mut hit: impl FnMut(NodeId) -> bool) -> Vec<ChannelId> {
    topo.channels()
        .iter()
        .enumerate()
        .filter(|(_, ch)| hit(ch.src) || hit(ch.dst))
        .map(|(i, _)| ChannelId::new(i))
        .collect()
}

fn validate_coord(coord: &Coord, topo: &dyn Topology) -> Result<(), FaultPlanError> {
    if coord.num_dims() != topo.num_dims() {
        return err(format!(
            "coordinate {:?} has {} dimensions, {} has {}",
            coord.components(),
            coord.num_dims(),
            topo.label(),
            topo.num_dims()
        ));
    }
    for dim in 0..topo.num_dims() {
        if usize::from(coord.get(dim)) >= topo.radix(dim) {
            return err(format!(
                "coordinate {:?} out of range in dimension {dim} (radix {})",
                coord.components(),
                topo.radix(dim)
            ));
        }
    }
    Ok(())
}

fn parse_fault(part: &str) -> Result<Fault, FaultPlanError> {
    let (target_spec, when) = match part.split_once('@') {
        Some((t, w)) => (t, Some(w)),
        None => (part, None),
    };
    let (inject_at, repair_at) = match when {
        None => (0, None),
        Some(w) => match w.split_once("..") {
            None => (parse_cycle(w)?, None),
            Some((i, r)) => (parse_cycle(i)?, Some(parse_cycle(r)?)),
        },
    };
    let target = match target_spec.split_once(':') {
        Some(("chan", id)) => FaultTarget::Channel(ChannelId::new(parse_index(id)?)),
        Some(("node", node)) => {
            if node.contains(',') {
                FaultTarget::NodeAt(parse_coord(node)?)
            } else {
                FaultTarget::Node(NodeId::new(parse_index(node)?))
            }
        }
        Some(("region", corners)) => match corners.split_once('-') {
            Some((min, max)) => FaultTarget::Region {
                min: parse_coord(min)?,
                max: parse_coord(max)?,
            },
            None => return err(format!("region '{corners}' needs '<min>-<max>' corners")),
        },
        Some(("random", draw)) => match draw.split_once(':') {
            Some((count, seed)) => FaultTarget::Random {
                count: parse_index(count)?,
                seed: parse_cycle(seed)?,
            },
            None => FaultTarget::Random {
                count: parse_index(draw)?,
                seed: 0,
            },
        },
        _ => {
            return err(format!(
                "unknown fault '{part}': expected chan:/node:/region:/random:"
            ));
        }
    };
    Ok(Fault {
        target,
        inject_at,
        repair_at,
    })
}

fn parse_index(s: &str) -> Result<usize, FaultPlanError> {
    match s.trim().parse() {
        Ok(v) => Ok(v),
        Err(_) => err(format!("'{s}' is not a non-negative integer")),
    }
}

fn parse_cycle(s: &str) -> Result<u64, FaultPlanError> {
    match s.trim().parse() {
        Ok(v) => Ok(v),
        Err(_) => err(format!("'{s}' is not a cycle number")),
    }
}

fn parse_coord(s: &str) -> Result<Coord, FaultPlanError> {
    let mut components = Vec::new();
    for c in s.split(',') {
        match c.trim().parse() {
            Ok(v) => components.push(v),
            Err(_) => return err(format!("'{s}' is not a comma-separated coordinate")),
        }
    }
    Ok(Coord::new(components))
}

/// One compiled fault event: at the start of `cycle`, `channel` fails
/// (`fail == true`) or is repaired (`fail == false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultEvent {
    /// The cycle the event takes effect, before that cycle's routing.
    pub cycle: u64,
    /// The affected channel.
    pub channel: ChannelId,
    /// `true` to fail the channel, `false` to repair it.
    pub fail: bool,
}

/// A fault plan compiled against a topology: a merged, cycle-ordered
/// event list plus the channel count it was compiled for.
///
/// The `Debug` rendering is a compact content fingerprint rather than
/// the full event list, so a schedule embedded in a `Debug`-derived
/// configuration string stays short while still uniquely identifying
/// the fault set — experiment cache keys depend on this.
#[derive(Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    num_channels: usize,
}

impl FaultSchedule {
    /// A schedule with no events for a `num_channels`-channel topology.
    pub fn empty(num_channels: usize) -> Self {
        FaultSchedule {
            events: Vec::new(),
            num_channels,
        }
    }

    /// The events in replay order (ascending cycle; within a cycle,
    /// repairs before failures, then ascending channel id).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Channel count of the topology this schedule was compiled for.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `true` if any channel ever comes back.
    pub fn has_repairs(&self) -> bool {
        self.events.iter().any(|e| !e.fail)
    }

    /// `true` if the fault set never changes after cycle 0: every event
    /// is a failure injected at cycle 0. Static schedules are the ones
    /// a precomputed route table can honestly serve — the pruned
    /// relation is constant for the whole run.
    pub fn is_static(&self) -> bool {
        self.events.iter().all(|e| e.fail && e.cycle == 0)
    }

    /// Per-channel failed flags after applying every event with
    /// `event.cycle <= cycle`.
    pub fn failed_at(&self, cycle: u64) -> Vec<bool> {
        let mut failed = vec![false; self.num_channels];
        for e in &self.events {
            if e.cycle > cycle {
                break;
            }
            failed[e.channel.index()] = e.fail;
        }
        failed
    }

    /// Per-channel failed flags at cycle 0.
    pub fn failed_at_start(&self) -> Vec<bool> {
        self.failed_at(0)
    }

    /// Number of channels failed at cycle 0.
    pub fn failed_count_at_start(&self) -> usize {
        self.failed_at_start().iter().filter(|&&f| f).count()
    }

    /// A 64-bit content fingerprint: stable across runs and hosts,
    /// distinct (with overwhelming probability) for distinct schedules.
    pub fn fingerprint(&self) -> u64 {
        let mut state = 0xFA17_0000u64 ^ self.num_channels as u64;
        let mut digest = turnroute_rng::split_mix_64(&mut state);
        for e in &self.events {
            state ^= e.cycle;
            digest ^= turnroute_rng::split_mix_64(&mut state);
            state ^= (e.channel.index() as u64) << 1 | u64::from(e.fail);
            digest ^= turnroute_rng::split_mix_64(&mut state);
        }
        digest
    }
}

impl fmt::Debug for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultSchedule")
            .field("events", &self.events.len())
            .field("channels", &self.num_channels)
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turnroute_topology::{Direction, Mesh};

    #[test]
    fn parse_round_trips_every_target_kind() {
        let plan = FaultPlan::parse("chan:17@5..9+node:3+node:1,2@100+region:0,0-1,1+random:4:99")
            .unwrap();
        assert_eq!(plan.faults().len(), 5);
        assert_eq!(
            plan.faults()[0],
            Fault {
                target: FaultTarget::Channel(ChannelId::new(17)),
                inject_at: 5,
                repair_at: Some(9),
            }
        );
        assert_eq!(plan.faults()[1].target, FaultTarget::Node(NodeId::new(3)));
        assert_eq!(plan.faults()[1].inject_at, 0);
        assert_eq!(
            plan.faults()[2].target,
            FaultTarget::NodeAt(Coord::from([1, 2]))
        );
        assert_eq!(plan.faults()[2].inject_at, 100);
        assert_eq!(
            plan.faults()[3].target,
            FaultTarget::Region {
                min: Coord::from([0, 0]),
                max: Coord::from([1, 1]),
            }
        );
        assert_eq!(
            plan.faults()[4].target,
            FaultTarget::Random { count: 4, seed: 99 }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "chan:17+",
            "link:3",
            "chan:x",
            "node:1,2,z",
            "region:0,0",
            "chan:1@a",
            "chan:1@5..b",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn compile_validates_targets() {
        let mesh = Mesh::new_2d(4, 4);
        let cases = [
            FaultPlan::new().channel(ChannelId::new(10_000), 0),
            FaultPlan::new().node(NodeId::new(99), 0),
            FaultPlan::parse("node:9,9").unwrap(),
            FaultPlan::parse("node:1,1,1").unwrap(),
            FaultPlan::parse("region:2,2-1,1").unwrap(),
            FaultPlan::parse("random:10000").unwrap(),
            FaultPlan::new().channel_transient(ChannelId::new(0), 5, 5),
        ];
        for plan in cases {
            assert!(plan.compile(&mesh).is_err(), "accepted {plan:?}");
        }
    }

    #[test]
    fn node_fault_takes_every_incident_channel() {
        let mesh = Mesh::new_2d(4, 4);
        let node = mesh.node_at(&[1, 1].into());
        let schedule = FaultPlan::new().node(node, 0).compile(&mesh).unwrap();
        // An interior router of a 2D mesh has 4 outgoing + 4 incoming.
        assert_eq!(schedule.events().len(), 8);
        let failed = schedule.failed_at_start();
        for (i, ch) in mesh.channels().iter().enumerate() {
            assert_eq!(failed[i], ch.src == node || ch.dst == node, "channel {i}");
        }
    }

    #[test]
    fn region_fault_implements_the_block_model() {
        let mesh = Mesh::new_2d(4, 4);
        let schedule = FaultPlan::parse("region:1,1-2,2")
            .unwrap()
            .compile(&mesh)
            .unwrap();
        let failed = schedule.failed_at_start();
        let inside = |n: NodeId| {
            let c = mesh.coord_of(n);
            (1..=2).contains(&c.get(0)) && (1..=2).contains(&c.get(1))
        };
        for (i, ch) in mesh.channels().iter().enumerate() {
            assert_eq!(failed[i], inside(ch.src) || inside(ch.dst), "channel {i}");
        }
        assert!(schedule.is_static());
    }

    #[test]
    fn overlapping_outages_merge_into_one() {
        let mesh = Mesh::new_2d(4, 4);
        let c = ChannelId::new(3);
        let schedule = FaultPlan::new()
            .channel_transient(c, 10, 30)
            .channel_transient(c, 20, 50)
            .channel_transient(c, 50, 60) // adjacent: still one outage
            .compile(&mesh)
            .unwrap();
        assert_eq!(
            schedule.events(),
            &[
                FaultEvent {
                    cycle: 10,
                    channel: c,
                    fail: true
                },
                FaultEvent {
                    cycle: 60,
                    channel: c,
                    fail: false
                },
            ]
        );
        assert!(schedule.failed_at(10)[c.index()]);
        assert!(schedule.failed_at(59)[c.index()]);
        assert!(!schedule.failed_at(60)[c.index()]);
        assert!(!schedule.failed_at(9)[c.index()]);
        assert!(!schedule.is_static());
        assert!(schedule.has_repairs());
    }

    #[test]
    fn permanent_overlap_swallows_repairs() {
        let mesh = Mesh::new_2d(4, 4);
        let c = ChannelId::new(0);
        let schedule = FaultPlan::new()
            .channel_transient(c, 5, 10)
            .channel(c, 7)
            .compile(&mesh)
            .unwrap();
        assert_eq!(schedule.events().len(), 1);
        assert!(!schedule.has_repairs());
        assert!(schedule.failed_at(1_000_000)[c.index()]);
    }

    #[test]
    fn random_draw_is_deterministic_and_prefix_nested() {
        let mesh = Mesh::new_2d(8, 8);
        let draw = |count| {
            let s = FaultPlan::new()
                .random_channels(count, 42)
                .compile(&mesh)
                .unwrap();
            s.failed_at_start()
        };
        assert_eq!(draw(5), draw(5));
        let four = draw(4);
        let five = draw(5);
        assert_eq!(four.iter().filter(|&&f| f).count(), 4);
        assert_eq!(five.iter().filter(|&&f| f).count(), 5);
        for i in 0..four.len() {
            assert!(!four[i] || five[i], "draw(5) lost channel {i} of draw(4)");
        }
        // A different seed gives a different draw.
        let other = FaultPlan::new()
            .random_channels(5, 43)
            .compile(&mesh)
            .unwrap()
            .failed_at_start();
        assert_ne!(five, other);
    }

    #[test]
    fn events_replay_in_cycle_order_with_repairs_first() {
        let mesh = Mesh::new_2d(4, 4);
        let schedule = FaultPlan::new()
            .channel_transient(ChannelId::new(5), 0, 20)
            .channel(ChannelId::new(2), 20)
            .compile(&mesh)
            .unwrap();
        let cycles: Vec<(u64, bool)> = schedule
            .events()
            .iter()
            .map(|e| (e.cycle, e.fail))
            .collect();
        assert_eq!(cycles, vec![(0, true), (20, false), (20, true)]);
    }

    #[test]
    fn fingerprint_distinguishes_schedules_and_debug_is_compact() {
        let mesh = Mesh::new_2d(4, 4);
        let a = FaultPlan::new()
            .channel(ChannelId::new(1), 0)
            .compile(&mesh)
            .unwrap();
        let b = FaultPlan::new()
            .channel(ChannelId::new(2), 0)
            .compile(&mesh)
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
        assert!(format!("{a:?}").len() < 120, "{a:?}");
        // Same content, same fingerprint, regardless of how it was built.
        let a2 = FaultPlan::parse("chan:1").unwrap().compile(&mesh).unwrap();
        assert_eq!(a.fingerprint(), a2.fingerprint());
        assert_eq!(a, a2);
    }

    #[test]
    fn empty_plan_compiles_to_empty_schedule() {
        let mesh = Mesh::new_2d(4, 4);
        let schedule = FaultPlan::new().compile(&mesh).unwrap();
        assert!(schedule.is_empty());
        assert!(schedule.is_static());
        assert_eq!(schedule.failed_count_at_start(), 0);
        assert_eq!(schedule, FaultSchedule::empty(mesh.num_channels()));
    }

    #[test]
    fn channel_fault_matches_direction_lookup() {
        // Sanity-check the id-based API against a geometric lookup.
        let mesh = Mesh::new_2d(4, 4);
        let node = mesh.node_at(&[2, 2].into());
        let east = mesh.channel_from(node, Direction::EAST).unwrap();
        let schedule = FaultPlan::new().channel(east, 0).compile(&mesh).unwrap();
        assert_eq!(schedule.failed_count_at_start(), 1);
        assert!(schedule.failed_at_start()[east.index()]);
    }
}
