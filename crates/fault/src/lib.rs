//! Fault injection for wormhole-routed networks.
//!
//! The turn model's deadlock-freedom guarantee is proven for a healthy
//! network; this crate asks what remains of it when links and routers
//! fail. It provides three layers:
//!
//! * [`FaultPlan`] — a deterministic, declarative schedule of channel,
//!   node, and rectangular *region* faults (the classic block-fault
//!   model), each with an injection cycle and an optional repair cycle.
//!   Plans compile against a concrete [`Topology`] into a
//!   [`FaultSchedule`]: a flat, merged, cycle-ordered event list the
//!   simulator replays verbatim.
//! * [`FaultedRelation`] — wraps any [`RoutingAlgorithm`] and prunes
//!   directions whose output channel is failed, turning a healthy
//!   routing relation into the relation a fault-aware router actually
//!   follows.
//! * [`verify`] — checks the pruned relation the way the workspace
//!   checks healthy ones: the channel-dependence graph restricted to
//!   reachable states must stay acyclic (deadlock freedom survives the
//!   fault set), and every (src, dst) pair must remain deliverable
//!   (no adaptive choice can strand a packet on an empty direction
//!   set). Disconnected pairs are reported, not silently stranded.
//!
//! Everything is seed-addressed and allocation-predictable: the same
//! plan compiles to the same schedule on every host, so faulted
//! experiments stay bit-reproducible.
//!
//! # Example
//!
//! ```
//! use turnroute_fault::{verify, FaultPlan, FaultedRelation};
//! use turnroute_core::WestFirst;
//! use turnroute_topology::Mesh;
//!
//! let mesh = Mesh::new_2d(8, 8);
//! // Two random permanent link faults, derived from seed 7.
//! let schedule = FaultPlan::new()
//!     .random_channels(2, 7)
//!     .compile(&mesh)
//!     .unwrap();
//! let wf = WestFirst::minimal();
//! let report = verify(&mesh, &wf, &schedule.failed_at_start());
//! // West-first cannot route around every fault: the verifier tells
//! // us exactly which pairs are lost instead of stranding packets.
//! println!("{report}");
//! # let _ = FaultedRelation::from_schedule(&wf, &mesh, &schedule);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod relation;
mod verify;

pub use plan::{Fault, FaultEvent, FaultPlan, FaultPlanError, FaultSchedule, FaultTarget};
pub use relation::FaultedRelation;
pub use verify::{verify, VerifyReport};

// Re-exported so downstream code can name the trait objects in this
// crate's API without importing the underlying crates directly.
pub use turnroute_core::RoutingAlgorithm;
pub use turnroute_topology::Topology;
